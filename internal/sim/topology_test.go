package sim

import (
	"math/rand"
	"testing"

	"crossroads/internal/kinematics"
	"crossroads/internal/plant"
	"crossroads/internal/topology"
	"crossroads/internal/traffic"
	"crossroads/internal/vehicle"
)

// topoWorkload builds a routed Poisson workload over topo.
func topoWorkload(t *testing.T, topo *topology.Topology, n int, seed int64) []traffic.Arrival {
	t.Helper()
	arr, err := traffic.PoissonRoutes(traffic.PoissonConfig{
		Rate: 0.3, NumVehicles: n, LanesPerRoad: 1,
		Mix:    traffic.DefaultTurnMix(),
		Params: kinematics.ScaleModelParams(),
	}, topo, 0, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return arr
}

// TestTopologyRunsCleanUnderAllPolicies is the acceptance check of the
// multi-IM engine: a 3-intersection corridor and a 2x2 grid run to
// completion under all three protocols with calibrated testbed noise, with
// zero collisions and zero buffer violations, and the per-node summaries
// account for every crossing.
func TestTopologyRunsCleanUnderAllPolicies(t *testing.T) {
	line3, err := topology.Line(3)
	if err != nil {
		t.Fatal(err)
	}
	grid22, err := topology.Grid(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	topos := []struct {
		name string
		topo *topology.Topology
	}{
		{"corridor-3", line3.WithSegmentLen(0.8)},
		{"grid-2x2", grid22.WithSegmentLen(0.8)},
	}
	policies := []vehicle.Policy{vehicle.PolicyVTIM, vehicle.PolicyCrossroads, vehicle.PolicyAIM}
	for _, tc := range topos {
		for _, pol := range policies {
			pol := pol
			tc := tc
			t.Run(tc.name+"/"+pol.String(), func(t *testing.T) {
				t.Parallel()
				arr := topoWorkload(t, tc.topo, 20, 7)
				res, err := Run(Config{
					Topology: tc.topo,
					Policy:   pol,
					Noise:    plant.TestbedNoise(),
					Seed:     7,
				}, arr)
				if err != nil {
					t.Fatal(err)
				}
				if res.Incomplete != 0 {
					t.Errorf("%d vehicles incomplete", res.Incomplete)
				}
				if res.Summary.Completed != len(arr) {
					t.Errorf("completed %d of %d journeys", res.Summary.Completed, len(arr))
				}
				if res.Summary.Collisions != 0 || res.Summary.BufferViolations != 0 {
					t.Errorf("collisions=%d bufferViolations=%d, want 0/0",
						res.Summary.Collisions, res.Summary.BufferViolations)
				}
				if len(res.PerNode) != tc.topo.NumNodes() {
					t.Fatalf("PerNode has %d entries, want %d", len(res.PerNode), tc.topo.NumNodes())
				}
				// Every journey leg must appear in exactly one node summary,
				// and at least one vehicle must actually traverse multiple
				// nodes, or the topology engine is not being exercised.
				crossings, journeys := 0, 0
				for _, s := range res.PerNode {
					crossings += s.Completed
				}
				for _, r := range res.Vehicles {
					if r.Done {
						journeys++
					}
				}
				if crossings <= journeys {
					t.Errorf("crossings=%d journeys=%d: no vehicle crossed more than one intersection", crossings, journeys)
				}
				// End-to-end wait must be at least as pessimistic as any
				// single vehicle is delayed: sanity that journey records use
				// route-level free flow (a grossly negative wait would mean
				// the route distance was miscounted).
				if res.Summary.MeanWait < 0 {
					t.Errorf("negative mean journey wait %v", res.Summary.MeanWait)
				}
			})
		}
	}
}

// TestSingleTopologyMatchesNilConfig pins the tentpole's compatibility
// contract: passing an explicit topology.Single() must reproduce the nil-
// topology (classic single-intersection) results bit for bit.
func TestSingleTopologyMatchesNilConfig(t *testing.T) {
	arr, err := traffic.Poisson(traffic.PoissonConfig{
		Rate: 0.6, NumVehicles: 24, LanesPerRoad: 1,
		Mix:    traffic.DefaultTurnMix(),
		Params: kinematics.ScaleModelParams(),
	}, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	base := Config{Policy: vehicle.PolicyCrossroads, Noise: plant.TestbedNoise(), Seed: 3}
	withNil, err := Run(base, arr)
	if err != nil {
		t.Fatal(err)
	}
	explicit := base
	explicit.Topology = topology.Single()
	withSingle, err := Run(explicit, arr)
	if err != nil {
		t.Fatal(err)
	}
	if len(withNil.Vehicles) != len(withSingle.Vehicles) {
		t.Fatalf("vehicle counts differ: %d vs %d", len(withNil.Vehicles), len(withSingle.Vehicles))
	}
	for i := range withNil.Vehicles {
		if withNil.Vehicles[i] != withSingle.Vehicles[i] {
			t.Errorf("vehicle record %d differs:\n nil:    %+v\n single: %+v",
				i, withNil.Vehicles[i], withSingle.Vehicles[i])
		}
	}
	// SchedulerWall is host wall-clock time — the only legitimately
	// non-deterministic summary field.
	sa, sb := withNil.Summary, withSingle.Summary
	sa.SchedulerWall, sb.SchedulerWall = 0, 0
	if sa != sb {
		t.Errorf("summaries differ:\n nil:    %+v\n single: %+v", sa, sb)
	}
	if withNil.Network != withSingle.Network {
		t.Errorf("network stats differ:\n nil:    %+v\n single: %+v", withNil.Network, withSingle.Network)
	}
}
