package sim

import (
	"testing"

	"crossroads/internal/plant"
	"crossroads/internal/topology"
	"crossroads/internal/trace"
	"crossroads/internal/vehicle"
)

// TestNewPoliciesDeterministicAcrossWorkers pins each of the new policy
// families — dot, signalized, auction — bit-identical across parallel-kernel
// worker counts on a 2x2 grid, the same contract the crossroads policy
// carries in TestParallelKernelDeterministicAcrossWorkers. A policy that
// consults map-iteration order or wall time in its scheduling path fails
// here before it can corrupt a sweep.
func TestNewPoliciesDeterministicAcrossWorkers(t *testing.T) {
	grid22, err := topology.Grid(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	topo := grid22.WithSegmentLen(0.8)
	arr := topoWorkload(t, topo, 14, 23)
	params := map[string]string{
		"dot.grid":          "10",
		"auction.emergency": "4",
		"signalized.green":  "6",
	}
	for _, pol := range []vehicle.Policy{vehicle.PolicyDOT, vehicle.PolicySignalized, vehicle.PolicyAuction} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			t.Parallel()
			run := func(workers int) (Result, []trace.Event) {
				rec := trace.NewFull()
				cfg, err := NewConfig(
					WithTopology(topo),
					WithPolicy(pol),
					WithPolicyParams(params),
					WithSeed(23),
					WithNoise(plant.TestbedNoise()),
					WithKernel(KernelParallel),
					WithKernelWorkers(workers),
					WithTrace(rec),
				)
				if err != nil {
					t.Fatal(err)
				}
				res, err := Run(cfg, arr)
				if err != nil {
					t.Fatal(err)
				}
				evs := append([]trace.Event(nil), rec.Events()...)
				trace.CanonicalizeWall(evs)
				res.Summary.SchedulerWall = 0
				for k := range res.PerNode {
					res.PerNode[k].SchedulerWall = 0
				}
				return res, evs
			}
			want, wantEvs := run(1)
			if want.Summary.Collisions != 0 || want.Stranded != 0 {
				t.Fatalf("policy %v reference run: %d collisions, %d stranded",
					pol, want.Summary.Collisions, want.Stranded)
			}
			for _, workers := range []int{2, 4} {
				got, gotEvs := run(workers)
				if len(got.Vehicles) != len(want.Vehicles) {
					t.Fatalf("workers=%d: %d vehicles, want %d", workers, len(got.Vehicles), len(want.Vehicles))
				}
				for i := range want.Vehicles {
					if got.Vehicles[i] != want.Vehicles[i] {
						t.Fatalf("workers=%d: vehicle record %d differs:\n got %+v\nwant %+v",
							workers, i, got.Vehicles[i], want.Vehicles[i])
					}
				}
				if got.Summary != want.Summary {
					t.Errorf("workers=%d: summary differs:\n got %+v\nwant %+v", workers, got.Summary, want.Summary)
				}
				if got.Network != want.Network {
					t.Errorf("workers=%d: network stats differ:\n got %+v\nwant %+v", workers, got.Network, want.Network)
				}
				if len(gotEvs) != len(wantEvs) {
					t.Fatalf("workers=%d: trace length %d, want %d", workers, len(gotEvs), len(wantEvs))
				}
				for i := range wantEvs {
					if gotEvs[i] != wantEvs[i] {
						t.Fatalf("workers=%d: trace event %d differs:\n got %+v\nwant %+v",
							workers, i, gotEvs[i], wantEvs[i])
					}
				}
			}
		})
	}
}
