package sim

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"crossroads/internal/kinematics"
	"crossroads/internal/plant"
	"crossroads/internal/traffic"
	"crossroads/internal/vehicle"
)

// goldenCase is one pinned single-intersection run. The golden file was
// generated against the pre-topology world (one hardwired intersection);
// the refactored engine must reproduce it bit-for-bit when the topology is
// the implicit Single() default.
type goldenCase struct {
	Name     string
	Policy   vehicle.Policy
	Seed     int64
	Noisy    bool
	LossProb float64
	Scenario int     // >0: scale scenario; 0: Poisson
	Rate     float64 // Poisson rate when Scenario == 0
	Vehicles int     // Poisson fleet when Scenario == 0
}

func goldenCases() []goldenCase {
	return []goldenCase{
		{Name: "scenario1-crossroads-noisy", Policy: vehicle.PolicyCrossroads, Seed: 11, Noisy: true, Scenario: 1},
		{Name: "scenario4-vtim-noisy", Policy: vehicle.PolicyVTIM, Seed: 5, Noisy: true, Scenario: 4},
		{Name: "poisson-aim-lossy", Policy: vehicle.PolicyAIM, Seed: 9, LossProb: 0.02, Rate: 0.6, Vehicles: 24},
		{Name: "poisson-batch", Policy: vehicle.PolicyBatch, Seed: 3, Rate: 0.4, Vehicles: 16},
	}
}

// goldenRecord is the exact-precision fingerprint of one run. Floats are
// serialized via strconv.FormatFloat(v, 'g', -1, 64), so any bit-level
// drift in the simulation shows up as a string diff.
type goldenRecord struct {
	Policy     string            `json:"policy"`
	Summary    map[string]string `json:"summary"`
	Network    map[string]string `json:"network"`
	ExitTimes  []string          `json:"exit_times"`
	Incomplete int               `json:"incomplete"`
}

func f64(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func runGoldenCase(t *testing.T, gc goldenCase) goldenRecord {
	t.Helper()
	var arrivals []traffic.Arrival
	var err error
	if gc.Scenario > 0 {
		arrivals, err = traffic.ScaleScenario(gc.Scenario, rand.New(rand.NewSource(gc.Seed)))
	} else {
		arrivals, err = traffic.Poisson(traffic.PoissonConfig{
			Rate:         gc.Rate,
			NumVehicles:  gc.Vehicles,
			LanesPerRoad: 1,
			Mix:          traffic.DefaultTurnMix(),
			Params:       kinematics.ScaleModelParams(),
		}, rand.New(rand.NewSource(gc.Seed)))
	}
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Policy: gc.Policy, Seed: gc.Seed, LossProb: gc.LossProb}
	if gc.Noisy {
		cfg.Noise = plant.TestbedNoise()
	}
	res, err := Run(cfg, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	rec := goldenRecord{
		Policy: res.Policy,
		Summary: map[string]string{
			"mean_wait":   f64(res.Summary.MeanWait),
			"max_wait":    f64(res.Summary.MaxWait),
			"mean_travel": f64(res.Summary.MeanTravel),
			"throughput":  f64(res.Summary.Throughput),
			"makespan":    f64(res.Summary.MakeSpan),
			"sched_delay": f64(res.Summary.SchedulerSimDelay),
			"completed":   strconv.Itoa(res.Summary.Completed),
			"messages":    strconv.Itoa(res.Summary.Messages),
			"bytes":       strconv.Itoa(res.Summary.Bytes),
			"collisions":  strconv.Itoa(res.Summary.Collisions),
			"bufviol":     strconv.Itoa(res.Summary.BufferViolations),
			"revisions":   strconv.Itoa(res.Summary.Revisions),
			"invocations": strconv.Itoa(res.Summary.SchedulerInvocations),
		},
		Network: map[string]string{
			"sent":          strconv.Itoa(res.Network.Sent),
			"delivered":     strconv.Itoa(res.Network.Delivered),
			"dropped":       strconv.Itoa(res.Network.Dropped),
			"undeliverable": strconv.Itoa(res.Network.Undeliverable),
			"total_delay":   f64(res.Network.TotalDelay),
			"max_delay":     f64(res.Network.MaxDelay),
		},
		Incomplete: res.Incomplete,
	}
	for _, v := range res.Vehicles {
		rec.ExitTimes = append(rec.ExitTimes, f64(v.ExitTime))
	}
	return rec
}

// TestGoldenSingleIntersection pins the whole single-intersection stack —
// kinematics, plants, network sampling, IM scheduling, metrics — to the
// exact results of the pre-topology engine. Regenerate the golden file
// only for an intentional behavior change:
//
//	CROSSROADS_UPDATE_GOLDEN=1 go test ./internal/sim -run TestGoldenSingleIntersection
func TestGoldenSingleIntersection(t *testing.T) {
	path := filepath.Join("testdata", "golden_single.json")
	got := make(map[string]goldenRecord, len(goldenCases()))
	for _, gc := range goldenCases() {
		got[gc.Name] = runGoldenCase(t, gc)
	}
	if os.Getenv("CROSSROADS_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file updated: %s", path)
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run with CROSSROADS_UPDATE_GOLDEN=1 to create): %v", err)
	}
	var want map[string]goldenRecord
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Errorf("golden case %q no longer produced", name)
			continue
		}
		for k, v := range w.Summary {
			if g.Summary[k] != v {
				t.Errorf("%s: summary %s = %s, golden %s", name, k, g.Summary[k], v)
			}
		}
		for k, v := range w.Network {
			if g.Network[k] != v {
				t.Errorf("%s: network %s = %s, golden %s", name, k, g.Network[k], v)
			}
		}
		if len(g.ExitTimes) != len(w.ExitTimes) {
			t.Errorf("%s: %d exit times, golden %d", name, len(g.ExitTimes), len(w.ExitTimes))
		} else {
			for i := range w.ExitTimes {
				if g.ExitTimes[i] != w.ExitTimes[i] {
					t.Errorf("%s: vehicle %d exit %s, golden %s", name, i, g.ExitTimes[i], w.ExitTimes[i])
					break
				}
			}
		}
		if g.Incomplete != w.Incomplete {
			t.Errorf("%s: incomplete %d, golden %d", name, g.Incomplete, w.Incomplete)
		}
	}
}
