package sim

import (
	"math"
	"sort"
	"testing"

	"crossroads/internal/fault"
	"crossroads/internal/metrics"
	"crossroads/internal/network"
	"crossroads/internal/plant"
	"crossroads/internal/topology"
	"crossroads/internal/trace"
	"crossroads/internal/vehicle"
)

// equivTopo builds the two reference topologies of the cross-kernel
// equivalence suite.
func equivTopos(t *testing.T) map[string]*topology.Topology {
	t.Helper()
	line3, err := topology.Line(3)
	if err != nil {
		t.Fatal(err)
	}
	grid22, err := topology.Grid(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*topology.Topology{
		"line-3":   line3.WithSegmentLen(0.8),
		"grid-2x2": grid22.WithSegmentLen(0.8),
	}
}

// canonTrace returns a kernel-order-independent view of a trace: wall
// times zeroed and events sorted by a total content key, so the serial
// stream (global execution order) and the merged parallel stream compare
// equal when they carry the same events.
func canonTrace(evs []trace.Event) []trace.Event {
	out := append([]trace.Event(nil), evs...)
	trace.CanonicalizeWall(out)
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.T != b.T {
			return a.T < b.T
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Vehicle != b.Vehicle {
			return a.Vehicle < b.Vehicle
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		if a.Detail != b.Detail {
			return a.Detail < b.Detail
		}
		return a.Value < b.Value
	})
	return out
}

func recordsByID(rs []metrics.VehicleRecord) map[int64]metrics.VehicleRecord {
	m := make(map[int64]metrics.VehicleRecord, len(rs))
	for _, r := range rs {
		m[r.ID] = r
	}
	return m
}

func closeEnough(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Abs(a-b) <= 1e-9*(1+math.Max(math.Abs(a), math.Abs(b)))
}

// TestParallelKernelMatchesSerial pins the cross-kernel equivalence
// contract: in the deterministic-comparison regime (perfect clocks,
// constant delay, no loss, no plant noise — so no result depends on which
// RNG stream layout is in use) the parallel kernel reproduces the serial
// kernel's per-vehicle journeys, per-node summaries, and canonicalized
// trace on Line(3) and Grid(2,2) across multiple seeds.
func TestParallelKernelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed equivalence sweep")
	}
	for name, topo := range equivTopos(t) {
		for _, seed := range []int64{3, 5, 9} {
			seed := seed
			topo := topo
			t.Run(name+"/seed-"+string(rune('0'+seed)), func(t *testing.T) {
				t.Parallel()
				arr := topoWorkload(t, topo, 16, seed)
				base := []Option{
					WithTopology(topo),
					WithPolicy(vehicle.PolicyCrossroads),
					WithSeed(seed),
					WithPerfectClocks(),
					WithDelay(network.ConstantDelay{D: 0.004}),
				}
				serTrace := trace.NewFull()
				serCfg, err := NewConfig(append(base, WithTrace(serTrace))...)
				if err != nil {
					t.Fatal(err)
				}
				ser, err := Run(serCfg, arr)
				if err != nil {
					t.Fatal(err)
				}
				parTrace := trace.NewFull()
				parCfg, err := NewConfig(append(base,
					WithTrace(parTrace), WithKernel(KernelParallel))...)
				if err != nil {
					t.Fatal(err)
				}
				par, err := Run(parCfg, arr)
				if err != nil {
					t.Fatal(err)
				}
				if ser.Kernel != "serial" || par.Kernel != "parallel" {
					t.Fatalf("kernels ran as %q/%q, want serial/parallel", ser.Kernel, par.Kernel)
				}
				if ser.Incomplete != 0 || par.Incomplete != 0 {
					t.Fatalf("incomplete: serial %d, parallel %d", ser.Incomplete, par.Incomplete)
				}

				// Per-vehicle journeys must match exactly (modulo float
				// identity; timestamps come out of identical event orders).
				sm, pm := recordsByID(ser.Vehicles), recordsByID(par.Vehicles)
				for id, sr := range sm {
					pr, ok := pm[id]
					if !ok {
						t.Fatalf("vehicle %d missing from parallel run", id)
					}
					if sr.Done != pr.Done || sr.Retries != pr.Retries || sr.Movement != pr.Movement {
						t.Errorf("vehicle %d: serial %+v != parallel %+v", id, sr, pr)
					}
					if !closeEnough(sr.SpawnTime, pr.SpawnTime) ||
						!closeEnough(sr.ExitTime, pr.ExitTime) ||
						!closeEnough(sr.FreeFlowTime, pr.FreeFlowTime) {
						t.Errorf("vehicle %d times: serial %+v != parallel %+v", id, sr, pr)
					}
				}

				// Aggregate summaries: integers exact, floats to summation-
				// order tolerance.
				if ser.Summary.Completed != par.Summary.Completed ||
					ser.Summary.Collisions != par.Summary.Collisions ||
					ser.Summary.BufferViolations != par.Summary.BufferViolations ||
					ser.Summary.Messages != par.Summary.Messages ||
					ser.Summary.SchedulerInvocations != par.Summary.SchedulerInvocations {
					t.Errorf("summary counters differ:\nserial   %+v\nparallel %+v", ser.Summary, par.Summary)
				}
				if !closeEnough(ser.Summary.TotalWait, par.Summary.TotalWait) ||
					!closeEnough(ser.Summary.MeanWait, par.Summary.MeanWait) ||
					!closeEnough(ser.Summary.MakeSpan, par.Summary.MakeSpan) {
					t.Errorf("summary floats differ:\nserial   %+v\nparallel %+v", ser.Summary, par.Summary)
				}
				if len(ser.PerNode) != len(par.PerNode) {
					t.Fatalf("PerNode length %d != %d", len(ser.PerNode), len(par.PerNode))
				}
				for k := range ser.PerNode {
					s, p := ser.PerNode[k], par.PerNode[k]
					if s.Completed != p.Completed || s.Collisions != p.Collisions ||
						s.BufferViolations != p.BufferViolations {
						t.Errorf("node %d counters: serial %+v != parallel %+v", k, s, p)
					}
					if !closeEnough(s.TotalWait, p.TotalWait) {
						t.Errorf("node %d wait: serial %v != parallel %v", k, s.TotalWait, p.TotalWait)
					}
				}
				if ser.Network.Sent != par.Network.Sent ||
					ser.Network.Delivered != par.Network.Delivered ||
					ser.Network.Undeliverable != par.Network.Undeliverable {
					t.Errorf("network stats differ:\nserial   %+v\nparallel %+v", ser.Network, par.Network)
				}

				// Canonicalized traces must be event-for-event identical.
				se := canonTrace(serTrace.Events())
				pe := canonTrace(parTrace.Events())
				if len(se) != len(pe) {
					t.Fatalf("trace lengths differ: serial %d, parallel %d", len(se), len(pe))
				}
				for i := range se {
					if se[i] != pe[i] {
						t.Fatalf("trace diverges at event %d:\nserial   %+v\nparallel %+v", i, se[i], pe[i])
					}
				}
			})
		}
	}
}

// TestParallelKernelDeterministicAcrossWorkers pins the determinism
// contract on a fully stochastic configuration (testbed noise, drifting
// clocks, sampled delays): the parallel kernel must produce bit-identical
// results at any worker count.
func TestParallelKernelDeterministicAcrossWorkers(t *testing.T) {
	grid22, err := topology.Grid(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	topo := grid22.WithSegmentLen(0.8)
	arr := topoWorkload(t, topo, 14, 11)
	run := func(workers int) (Result, []trace.Event) {
		rec := trace.NewFull()
		cfg, err := NewConfig(
			WithTopology(topo),
			WithPolicy(vehicle.PolicyCrossroads),
			WithSeed(11),
			WithNoise(plant.TestbedNoise()),
			WithKernel(KernelParallel),
			WithKernelWorkers(workers),
			WithTrace(rec),
		)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(cfg, arr)
		if err != nil {
			t.Fatal(err)
		}
		if res.Kernel != "parallel" {
			t.Fatalf("ran on %q kernel", res.Kernel)
		}
		evs := append([]trace.Event(nil), rec.Events()...)
		trace.CanonicalizeWall(evs)
		// Zero the one wall-clock (nondeterministic) summary field.
		res.Summary.SchedulerWall = 0
		for k := range res.PerNode {
			res.PerNode[k].SchedulerWall = 0
		}
		return res, evs
	}
	want, wantEvs := run(1)
	for _, workers := range []int{2, 4} {
		got, gotEvs := run(workers)
		if len(got.Vehicles) != len(want.Vehicles) {
			t.Fatalf("workers=%d: %d vehicles, want %d", workers, len(got.Vehicles), len(want.Vehicles))
		}
		for i := range want.Vehicles {
			if got.Vehicles[i] != want.Vehicles[i] {
				t.Fatalf("workers=%d: vehicle record %d differs:\n got %+v\nwant %+v",
					workers, i, got.Vehicles[i], want.Vehicles[i])
			}
		}
		if got.Summary != want.Summary {
			t.Errorf("workers=%d: summary differs:\n got %+v\nwant %+v", workers, got.Summary, want.Summary)
		}
		if got.Network != want.Network {
			t.Errorf("workers=%d: network stats differ:\n got %+v\nwant %+v", workers, got.Network, want.Network)
		}
		if len(gotEvs) != len(wantEvs) {
			t.Fatalf("workers=%d: trace length %d, want %d", workers, len(gotEvs), len(wantEvs))
		}
		for i := range wantEvs {
			if gotEvs[i] != wantEvs[i] {
				t.Fatalf("workers=%d: trace event %d differs:\n got %+v\nwant %+v",
					workers, i, gotEvs[i], wantEvs[i])
			}
		}
	}
}

// TestParallelBarrierStressUnderDelaySpike drives the barrier
// synchronization through the fault layer's delay-spike scenario — the one
// that manufactures sub-lookahead cross-shard traffic (late grants push
// exit retransmissions across shard lines) — and checks the run stays
// safe and deterministic. CI runs this under -race to shake out any
// cross-shard sharing in the barrier protocol.
func TestParallelBarrierStressUnderDelaySpike(t *testing.T) {
	spike, ok := fault.Scenario("spike")
	if !ok {
		t.Fatal("spike scenario missing")
	}
	grid22, err := topology.Grid(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	topo := grid22.WithSegmentLen(0.8)
	arr := topoWorkload(t, topo, 16, 13)
	run := func(workers int) Result {
		cfg, err := NewConfig(
			WithTopology(topo),
			WithPolicy(vehicle.PolicyCrossroads),
			WithSeed(13),
			WithNoise(plant.TestbedNoise()),
			WithFaults(spike),
			WithKernel(KernelParallel),
			WithKernelWorkers(workers),
		)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(cfg, arr)
		if err != nil {
			t.Fatal(err)
		}
		res.Summary.SchedulerWall = 0
		for k := range res.PerNode {
			res.PerNode[k].SchedulerWall = 0
		}
		return res
	}
	want := run(4)
	if want.Summary.Collisions != 0 {
		t.Errorf("collisions under spike: %d", want.Summary.Collisions)
	}
	if want.Stranded != 0 {
		t.Errorf("%d vehicles stranded under spike", want.Stranded)
	}
	got := run(1)
	if got.Summary != want.Summary {
		t.Errorf("spike run not deterministic across workers:\n got %+v\nwant %+v",
			got.Summary, want.Summary)
	}
}
