package sim

// Closed-loop fault-injection tests: graceful degradation under a total
// partition, full recovery after an IM stall, and the deep-oversaturation
// AIM tail regression.

import (
	"math/rand"
	"testing"

	"crossroads/internal/fault"
	"crossroads/internal/intersection"
	"crossroads/internal/kinematics"
	"crossroads/internal/safety"
	"crossroads/internal/trace"
	"crossroads/internal/traffic"
	"crossroads/internal/vehicle"
)

func faultWorkload(t *testing.T, n int, seed int64) []traffic.Arrival {
	t.Helper()
	arr, err := traffic.Poisson(traffic.PoissonConfig{
		Rate: 0.4, NumVehicles: n, LanesPerRoad: 1,
		Mix: traffic.DefaultTurnMix(), Params: kinematics.ScaleModelParams(),
	}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return arr
}

// TestTotalPartitionFailsafe cuts every vehicle off from the IM for the
// whole run: nobody can be granted, so every vehicle must end standing in a
// failsafe stop short of the box — no collisions, nobody stranded mid-
// intersection, and the trace must show the fault window and the failsafes.
func TestTotalPartitionFailsafe(t *testing.T) {
	arr := faultWorkload(t, 12, 1)
	rec := trace.NewFull()
	res, err := Run(Config{
		Policy: vehicle.PolicyCrossroads,
		Seed:   1,
		Faults: &fault.Schedule{Windows: []fault.Window{
			{Kind: fault.Partition, Start: 0, Duration: 1e6, From: "veh*", To: "im*"},
		}},
		MaxSimTime: 60,
		Trace:      rec,
	}, arr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Collisions != 0 {
		t.Errorf("collisions = %d under total partition", res.Summary.Collisions)
	}
	if res.Incomplete != len(arr) {
		t.Errorf("Incomplete = %d, want all %d (nobody can be granted)", res.Incomplete, len(arr))
	}
	if res.FailsafeStopped != res.Incomplete {
		t.Errorf("FailsafeStopped = %d of %d incomplete: the rest did not degrade gracefully",
			res.FailsafeStopped, res.Incomplete)
	}
	if res.Stranded != 0 {
		t.Errorf("Stranded = %d, want 0", res.Stranded)
	}
	var sawBegin, sawFailsafe bool
	for _, e := range rec.Events() {
		switch e.Kind {
		case trace.KindFaultBegin:
			sawBegin = true
		case trace.KindVehFailsafe:
			sawFailsafe = true
		}
	}
	if !sawBegin {
		t.Error("trace missing fault.begin")
	}
	if !sawFailsafe {
		t.Error("trace missing veh.failsafe")
	}
}

// TestStallRecovery freezes the IM mid-rush; after recovery the buffered
// queue drains and the whole fleet must still complete with zero safety
// events.
func TestStallRecovery(t *testing.T) {
	arr := faultWorkload(t, 20, 2)
	for _, pol := range []vehicle.Policy{vehicle.PolicyCrossroads, vehicle.PolicyBatch} {
		res, err := Run(Config{
			Policy: pol,
			Seed:   2,
			Faults: &fault.Schedule{Windows: []fault.Window{
				{Kind: fault.Stall, Start: 4, Duration: 4, Node: 0},
			}},
		}, arr)
		if err != nil {
			t.Fatal(err)
		}
		if res.Summary.Collisions != 0 || res.Summary.BufferViolations != 0 {
			t.Errorf("%v: coll=%d buf=%d after stall recovery",
				pol, res.Summary.Collisions, res.Summary.BufferViolations)
		}
		if res.Incomplete != 0 {
			t.Errorf("%v: %d vehicles never completed after the stall healed", pol, res.Incomplete)
		}
	}
}

// TestFaultsOffIsByteIdenticalToNil pins that an empty (but non-nil)
// schedule still runs and that a nil schedule matches the pre-fault
// behavior exactly — the golden trace test covers the byte-level contract;
// this covers the summary-level one cheaply across policies.
func TestFaultsOffIsByteIdenticalToNil(t *testing.T) {
	arr := faultWorkload(t, 10, 3)
	clean, err := Run(Config{Policy: vehicle.PolicyCrossroads, Seed: 3}, arr)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Run(Config{Policy: vehicle.PolicyCrossroads, Seed: 3}, arr)
	if err != nil {
		t.Fatal(err)
	}
	// SchedulerWall is real wall-clock time and legitimately varies.
	clean.Summary.SchedulerWall = 0
	again.Summary.SchedulerWall = 0
	if clean.Summary != again.Summary {
		t.Errorf("identical configs diverge: %+v vs %+v", clean.Summary, again.Summary)
	}
}

// TestAIMDeepOversaturationTail is the grazing-tail regression: at rate 1.0
// with 80 full-scale vehicles AIM's yes/no protocol historically keeps rare
// grazes (the paper's QB-IM criticism) — the bound is <= 1 collision per
// seed and a fully completed fleet. A regression above that bound means the
// stale-response or confirm logic broke.
func TestAIMDeepOversaturationTail(t *testing.T) {
	if testing.Short() {
		t.Skip("deep-oversaturation sweep")
	}
	params := kinematics.FullScaleParams()
	for seed := int64(1); seed <= 3; seed++ {
		arr, err := traffic.Poisson(traffic.PoissonConfig{
			Rate: 1.0, NumVehicles: 80, LanesPerRoad: 1,
			Mix: traffic.DefaultTurnMix(), Params: params,
		}, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Config{
			Policy:       vehicle.PolicyAIM,
			Seed:         seed,
			Intersection: intersection.FullScaleConfig(),
			Spec:         safety.FullScaleSpec(),
		}, arr)
		if err != nil {
			t.Fatal(err)
		}
		if res.Summary.Collisions > 1 {
			t.Errorf("seed %d: AIM collisions = %d, tail bound is 1", seed, res.Summary.Collisions)
		}
		if res.Incomplete != 0 {
			t.Errorf("seed %d: %d vehicles incomplete", seed, res.Incomplete)
		}
	}
}
