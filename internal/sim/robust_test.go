package sim

import (
	"fmt"
	"math/rand"
	"os"
	"testing"

	"crossroads/internal/intersection"
	"crossroads/internal/kinematics"
	"crossroads/internal/safety"
	"crossroads/internal/traffic"
	"crossroads/internal/vehicle"
)

// TestRobustnessMatrix sweeps seeds x rates x policies x geometries counting
// safety events. Run with CROSSROADS_ROBUST=1 (several minutes).
func TestRobustnessMatrix(t *testing.T) {
	if os.Getenv("CROSSROADS_ROBUST") == "" {
		t.Skip("set CROSSROADS_ROBUST=1 to run")
	}
	type world struct {
		name   string
		inter  intersection.Config
		spec   safety.Spec
		params kinematics.Params
	}
	worlds := []world{
		{"scale", intersection.ScaleModelConfig(), safety.TestbedSpec(), kinematics.ScaleModelParams()},
		{"full", intersection.FullScaleConfig(), safety.FullScaleSpec(), kinematics.FullScaleParams()},
		{"mixed", intersection.FullScaleConfig(), safety.FullScaleSpec(), kinematics.FullScaleParams()},
	}
	truck := kinematics.Params{MaxSpeed: 12, MaxAccel: 1.5, MaxDecel: 3.5, Length: 12, Width: 2.5, Wheelbase: 6.5}
	events := 0
	for _, wl := range worlds {
		for _, rate := range []float64{0.2, 0.6, 1.0} {
			for seed := int64(1); seed <= 5; seed++ {
				arr, err := traffic.Poisson(traffic.PoissonConfig{
					Rate: rate, NumVehicles: 80, LanesPerRoad: 1,
					Mix: traffic.DefaultTurnMix(), Params: wl.params,
				}, rand.New(rand.NewSource(seed)))
				if err != nil {
					t.Fatal(err)
				}
				if wl.name == "mixed" {
					// Every fourth vehicle becomes a straight-through truck.
					for i := range arr {
						if i%4 == 3 {
							arr[i].Params = truck
							arr[i].Speed = truck.MaxSpeed
							arr[i].Movement.Turn = intersection.Straight
						}
					}
				}
				policies := []vehicle.Policy{vehicle.PolicyVTIM, vehicle.PolicyAIM, vehicle.PolicyCrossroads}
				if wl.name == "full" {
					// The batching extension needs approaches long enough
					// to cover its window+RTD command latency while
					// staying stop-capable; the 3 m scale approach is not
					// (a documented Tachet-design constraint).
					policies = append(policies, vehicle.PolicyBatch)
				}
				for _, pol := range policies {
					res, err := Run(Config{
						Policy: pol, Seed: seed,
						Intersection: wl.inter, Spec: wl.spec,
					}, arr)
					if err != nil {
						t.Fatal(err)
					}
					if res.Summary.Collisions > 0 || res.Summary.BufferViolations > 0 || res.Incomplete > 0 {
						// Documented baseline tails (never allowed for
						// Crossroads or batch, which must stay spotless):
						//  - AIM's yes/no protocol cannot revise stale
						//    grants, so it keeps rare grazes under
						//    saturation — worse with heterogeneous
						//    footprints (the paper's QB-IM criticism);
						//  - VT-IM *collapses* under load (the paper's
						//    central claim), so in the saturated mixed
						//    world a couple of vehicles may still be
						//    queued when the run's time cap hits. Hard
						//    safety (no contact) is still required.
						allowedTail := false
						switch res.Policy {
						case "aim":
							allowedTail = res.Summary.Collisions <= 1 &&
								(rate >= 1.0 || wl.name == "mixed") &&
								res.Incomplete == 0
						case "vt-im":
							allowedTail = res.Summary.Collisions == 0 &&
								res.Summary.BufferViolations == 0 &&
								wl.name == "mixed" && res.Incomplete <= 3
						}
						if allowedTail {
							fmt.Printf("allowed %s tail %s rate=%.1f seed=%d: col=%d buf=%d\n",
								res.Policy, wl.name, rate, seed, res.Summary.Collisions, res.Summary.BufferViolations)
							continue
						}
						events++
						fmt.Printf("EVENT %s rate=%.1f seed=%d %s: col=%d buf=%d inc=%d\n",
							wl.name, rate, seed, res.Policy,
							res.Summary.Collisions, res.Summary.BufferViolations, res.Incomplete)
					}
				}
			}
		}
	}
	if events > 0 {
		t.Errorf("%d runs with safety events", events)
	}
}
