package sim

import (
	"crossroads/internal/fault"
	"crossroads/internal/im"
	"crossroads/internal/intersection"
	"crossroads/internal/network"
	"crossroads/internal/plant"
	"crossroads/internal/safety"
	"crossroads/internal/topology"
	"crossroads/internal/trace"
	"crossroads/internal/vehicle"
)

// Option mutates a Config under construction. Options compose left to
// right; later options win on conflicting fields.
type Option func(*Config)

// NewConfig builds a validated Config from options. This is the preferred
// construction path: it runs Validate exactly once, here, and Run will not
// re-validate a Config built this way. The zero value of every unset knob
// keeps its documented default (scale-model geometry, testbed spec, cost
// and delay models, and so on).
//
// Constructing Config as a struct literal still works — Run validates such
// configs itself — but new code should use NewConfig so contradictions
// surface at construction time rather than inside the run.
func NewConfig(opts ...Option) (Config, error) {
	var cfg Config
	for _, o := range opts {
		o(&cfg)
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	cfg.validated = true
	return cfg, nil
}

// WithPolicy selects the IM policy under test.
func WithPolicy(p vehicle.Policy) Option { return func(c *Config) { c.Policy = p } }

// WithSeed sets the seed driving every stochastic component.
func WithSeed(seed int64) Option { return func(c *Config) { c.Seed = seed } }

// WithIntersection sets the intersection geometry used by every node.
func WithIntersection(ic intersection.Config) Option {
	return func(c *Config) { c.Intersection = ic }
}

// WithTopology sets the road network; nil means a single intersection.
func WithTopology(t *topology.Topology) Option { return func(c *Config) { c.Topology = t } }

// WithSpec sets the uncertainty bounds (buffers, WC-RTD).
func WithSpec(s safety.Spec) Option { return func(c *Config) { c.Spec = s } }

// WithCost sets the IM computation-cost model.
func WithCost(cm im.CostModel) Option { return func(c *Config) { c.Cost = cm } }

// WithDelay sets the network latency model.
func WithDelay(d network.DelayModel) Option { return func(c *Config) { c.Delay = d } }

// WithLossProb sets the i.i.d. message-loss probability.
func WithLossProb(p float64) Option { return func(c *Config) { c.LossProb = p } }

// WithFaults scripts fault windows onto the run.
func WithFaults(f *fault.Schedule) Option { return func(c *Config) { c.Faults = f } }

// WithNoise configures the plant disturbance model.
func WithNoise(n plant.NoiseConfig) Option { return func(c *Config) { c.Noise = n } }

// WithPhysicsDt sets the plant integration step in seconds.
func WithPhysicsDt(dt float64) Option { return func(c *Config) { c.PhysicsDt = dt } }

// WithMaxSimTime caps the run's simulated duration.
func WithMaxSimTime(t float64) Option { return func(c *Config) { c.MaxSimTime = t } }

// WithClockError bounds the vehicles' raw clock offset (s) and drift (ppm)
// before NTP sync.
func WithClockError(maxOffset, maxDriftPPM float64) Option {
	return func(c *Config) {
		c.ClockMaxOffset = maxOffset
		c.ClockMaxDriftPPM = maxDriftPPM
	}
}

// WithOmitRTDBuffer runs VT-IM without its RTD buffer — the UNSAFE
// ablation.
func WithOmitRTDBuffer() Option { return func(c *Config) { c.OmitRTDBuffer = true } }

// WithAIMTuning tunes the AIM baseline's grid resolution and time step.
func WithAIMTuning(gridN int, timeStep float64) Option {
	return func(c *Config) {
		c.AIMGridN = gridN
		c.AIMTimeStep = timeStep
	}
}

// WithPolicyParams sets generic per-policy tuning as namespaced
// "<policy>.<knob>" keys (e.g. "dot.grid", "signalized.green"). Keys under
// other policies' namespaces are ignored by the running policy, so one map
// can serve a whole sweep; an unknown knob under the running policy's
// namespace fails construction with an error naming the policy.
func WithPolicyParams(params map[string]string) Option {
	return func(c *Config) { c.PolicyParams = params }
}

// WithAgentOverrides replaces the per-policy vehicle-agent defaults.
func WithAgentOverrides(vc *vehicle.Config) Option {
	return func(c *Config) { c.AgentOverrides = vc }
}

// WithCollisionEvery checks footprint overlaps every n physics ticks.
func WithCollisionEvery(n int) Option { return func(c *Config) { c.CollisionEvery = n } }

// WithObserver attaches a per-tick vehicle snapshot callback, invoked
// every `every` physics ticks (0 means the default cadence).
func WithObserver(fn func(now float64, vehicles []VehicleView), every int) Option {
	return func(c *Config) {
		c.Observer = fn
		c.ObserverEvery = every
	}
}

// WithKernel selects the event-execution engine. KernelParallel requires a
// multi-node topology with positive segment length to engage; otherwise the
// run falls back to the serial kernel.
func WithKernel(k Kernel) Option { return func(c *Config) { c.Kernel = k } }

// WithKernelWorkers bounds the parallel kernel's concurrent shard
// executors (0 = one goroutine per shard). Results are identical at any
// worker count.
func WithKernelWorkers(n int) Option { return func(c *Config) { c.KernelWorkers = n } }

// WithKernelStrict makes a parallel-kernel request that cannot engage
// (single-node topology, zero segment length) an error instead of a
// warned serial fallback.
func WithKernelStrict() Option { return func(c *Config) { c.KernelStrict = true } }

// WithPerfectClocks zeroes every vehicle clock's offset and drift, the
// deterministic-comparison mode used by the cross-kernel equivalence tests.
func WithPerfectClocks() Option { return func(c *Config) { c.PerfectClocks = true } }

// WithCoordination arms the IM↔IM coordination plane (link-state digests,
// downstream backpressure, green-wave offsets) with the given digest
// period; period 0 uses the default. The parallel kernel raises the
// effective period to at least its lookahead window.
func WithCoordination(period float64) Option {
	return func(c *Config) {
		c.Coord = true
		c.CoordPeriod = period
	}
}

// WithTrace attaches a structured-event recorder to the run.
func WithTrace(rec *trace.Recorder) Option { return func(c *Config) { c.Trace = rec } }

// WithDESTrace additionally traces every executed kernel event. Requires
// WithTrace.
func WithDESTrace() Option { return func(c *Config) { c.TraceDES = true } }
