package sim

import (
	"math/rand"
	"reflect"
	"testing"

	"crossroads/internal/intersection"
	"crossroads/internal/safety"
	"crossroads/internal/traffic"
	"crossroads/internal/vehicle"
)

// TestNewConfigSetsFields proves every option lands on its Config field.
func TestNewConfigSetsFields(t *testing.T) {
	rec := intersection.FullScaleConfig()
	cfg, err := NewConfig(
		WithPolicy(vehicle.PolicyVTIM),
		WithSeed(99),
		WithIntersection(rec),
		WithSpec(safety.FullScaleSpec()),
		WithLossProb(0.1),
		WithPhysicsDt(0.02),
		WithMaxSimTime(45),
		WithClockError(0.5, 40),
		WithOmitRTDBuffer(),
		WithCollisionEvery(4),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.validated {
		t.Fatal("NewConfig did not mark the config validated")
	}
	want := Config{
		Policy:           vehicle.PolicyVTIM,
		Seed:             99,
		Intersection:     rec,
		Spec:             safety.FullScaleSpec(),
		LossProb:         0.1,
		PhysicsDt:        0.02,
		MaxSimTime:       45,
		ClockMaxOffset:   0.5,
		ClockMaxDriftPPM: 40,
		OmitRTDBuffer:    true,
		CollisionEvery:   4,
		validated:        true,
	}
	if !reflect.DeepEqual(cfg, want) {
		t.Fatalf("NewConfig mismatch:\n got %+v\nwant %+v", cfg, want)
	}
}

// TestNewConfigRejectsContradictions proves Validate runs at construction.
func TestNewConfigRejectsContradictions(t *testing.T) {
	_, err := NewConfig(WithPolicy(vehicle.PolicyCrossroads), WithOmitRTDBuffer())
	if err == nil {
		t.Fatal("NewConfig accepted the crossroads RTD ablation")
	}
	_, err = NewConfig(WithDESTrace())
	if err == nil {
		t.Fatal("NewConfig accepted TraceDES without a recorder")
	}
}

// TestNewConfigRunEquivalence proves a NewConfig-built run is bit-identical
// to the deprecated struct-literal path for the same knobs.
func TestNewConfigRunEquivalence(t *testing.T) {
	arrivals, err := traffic.ScaleScenario(1, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := NewConfig(WithPolicy(vehicle.PolicyCrossroads), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(cfg, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(Config{Policy: vehicle.PolicyCrossroads, Seed: 7}, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	// SchedulerWall is measured wall-clock time; everything else must be
	// bit-identical.
	got.Summary.SchedulerWall = 0
	want.Summary.SchedulerWall = 0
	for i := range got.PerNode {
		got.PerNode[i].SchedulerWall = 0
		want.PerNode[i].SchedulerWall = 0
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("NewConfig run diverges from struct-literal run:\n got %+v\nwant %+v", got.Summary, want.Summary)
	}
}
