package sim

import (
	"math/rand"
	"testing"

	"crossroads/internal/intersection"
	"crossroads/internal/kinematics"
	"crossroads/internal/network"
	"crossroads/internal/safety"
	"crossroads/internal/traffic"
	"crossroads/internal/vehicle"
)

// TestTwoLaneIntersection exercises the scalability extension: a two-lane-
// per-road full-scale intersection under all velocity-transaction policies.
// Lanes double the entry capacity; safety must hold across the extra
// conflict pairs (24 movements instead of 12).
func TestTwoLaneIntersection(t *testing.T) {
	cfg := intersection.FullScaleConfig()
	cfg.LanesPerRoad = 2
	cfg.BoxSize = 16 // four 3.5 m lanes per road need a wider box

	arr, err := traffic.Poisson(traffic.PoissonConfig{
		Rate:         0.3,
		NumVehicles:  60,
		LanesPerRoad: 2,
		Mix:          traffic.DefaultTurnMix(),
		Params:       kinematics.FullScaleParams(),
	}, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	// Outer lanes cannot turn left across the inner lane and inner lanes
	// cannot turn right across the outer one in this geometry (turns keep
	// their lane index); assign turns accordingly.
	for i := range arr {
		switch {
		case arr[i].Movement.Lane == 0 && arr[i].Movement.Turn == intersection.Right:
			arr[i].Movement.Turn = intersection.Straight
		case arr[i].Movement.Lane == 1 && arr[i].Movement.Turn == intersection.Left:
			arr[i].Movement.Turn = intersection.Straight
		}
	}

	for _, pol := range []vehicle.Policy{vehicle.PolicyVTIM, vehicle.PolicyCrossroads} {
		res, err := Run(Config{
			Policy:       pol,
			Seed:         9,
			Intersection: cfg,
			Spec:         safety.FullScaleSpec(),
		}, arr)
		if err != nil {
			t.Fatal(err)
		}
		if res.Summary.Completed != len(arr) {
			t.Errorf("%v: completed %d of %d", pol, res.Summary.Completed, len(arr))
		}
		if res.Summary.Collisions != 0 {
			t.Errorf("%v: %d collisions", pol, res.Summary.Collisions)
		}
		if res.Summary.BufferViolations != 0 {
			t.Errorf("%v: %d buffer violations", pol, res.Summary.BufferViolations)
		}
	}
}

// TestTwoLaneBeatsSingleLane verifies the extra lane actually buys
// capacity: the same demand split over two lanes waits less than crammed
// into one.
func TestTwoLaneBeatsSingleLane(t *testing.T) {
	two := intersection.FullScaleConfig()
	two.LanesPerRoad = 2
	two.BoxSize = 16

	run := func(interCfg intersection.Config, lanes int, rate float64) float64 {
		arr, err := traffic.Poisson(traffic.PoissonConfig{
			Rate:         rate,
			NumVehicles:  60,
			LanesPerRoad: lanes,
			Mix:          traffic.TurnMix{Straight: 1},
			Params:       kinematics.FullScaleParams(),
		}, rand.New(rand.NewSource(4)))
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Config{
			Policy:       vehicle.PolicyCrossroads,
			Seed:         4,
			Intersection: interCfg,
			Spec:         safety.FullScaleSpec(),
		}, arr)
		if err != nil {
			t.Fatal(err)
		}
		if res.Summary.Collisions != 0 || res.Summary.BufferViolations != 0 {
			t.Fatalf("unsafe run: col=%d buf=%d", res.Summary.Collisions, res.Summary.BufferViolations)
		}
		return res.Summary.MeanWait
	}
	// Same total demand: 0.8 veh/s/road split over 1 vs 2 lanes.
	oneLaneWait := run(intersection.FullScaleConfig(), 1, 0.8)
	twoLaneWait := run(two, 2, 0.4)
	if twoLaneWait >= oneLaneWait {
		t.Errorf("two lanes (%v s) not faster than one (%v s)", twoLaneWait, oneLaneWait)
	}
}

// TestMessageLossRobustness injects heavy message loss: retransmissions
// with backoff must carry every vehicle through, safely, under all
// policies.
func TestMessageLossRobustness(t *testing.T) {
	arr, err := traffic.Poisson(traffic.PoissonConfig{
		Rate:         0.25,
		NumVehicles:  25,
		LanesPerRoad: 1,
		Mix:          traffic.DefaultTurnMix(),
		Params:       kinematics.ScaleModelParams(),
	}, rand.New(rand.NewSource(13)))
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range []vehicle.Policy{vehicle.PolicyVTIM, vehicle.PolicyCrossroads, vehicle.PolicyAIM} {
		res, err := Run(Config{
			Policy:   pol,
			Seed:     13,
			LossProb: 0.10, // one in ten messages vanishes
		}, arr)
		if err != nil {
			t.Fatal(err)
		}
		if res.Summary.Completed != len(arr) {
			t.Errorf("%v under loss: completed %d of %d", pol, res.Summary.Completed, len(arr))
		}
		if res.Summary.Collisions != 0 {
			t.Errorf("%v under loss: %d collisions", pol, res.Summary.Collisions)
		}
		if res.Network.Dropped == 0 {
			t.Errorf("%v: loss injection inactive", pol)
		}
		// Losses must show up as protocol retries, not silent hangs.
		if res.Summary.MeanRetries == 0 && pol != vehicle.PolicyAIM {
			t.Errorf("%v under loss: no retransmissions recorded", pol)
		}
	}
}

// TestClockDriftRobustness pushes clock offsets and drift well past the
// defaults: NTP still bounds the residual and Crossroads' timing contract
// holds.
func TestClockDriftRobustness(t *testing.T) {
	arr, err := traffic.Poisson(traffic.PoissonConfig{
		Rate:         0.3,
		NumVehicles:  20,
		LanesPerRoad: 1,
		Mix:          traffic.DefaultTurnMix(),
		Params:       kinematics.ScaleModelParams(),
	}, rand.New(rand.NewSource(17)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Policy:           vehicle.PolicyCrossroads,
		Seed:             17,
		ClockMaxOffset:   5.0, // five seconds of raw offset
		ClockMaxDriftPPM: 200,
	}, arr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Completed != len(arr) {
		t.Errorf("completed %d of %d", res.Summary.Completed, len(arr))
	}
	if res.Summary.Collisions != 0 || res.Summary.BufferViolations != 0 {
		t.Errorf("col=%d buf=%d under extreme clocks",
			res.Summary.Collisions, res.Summary.BufferViolations)
	}
}

// TestCustomNetworkDelay runs with a slow, jittery network still within
// the provisioned WC-RTD: Crossroads absorbs it by construction.
func TestCustomNetworkDelay(t *testing.T) {
	arr, _ := traffic.ScaleScenario(1, rand.New(rand.NewSource(3)))
	res, err := Run(Config{
		Policy: vehicle.PolicyCrossroads,
		Seed:   3,
		Delay:  network.UniformDelay{Min: 0.005, Max: 0.015},
	}, arr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Completed != len(arr) || res.Summary.Collisions != 0 {
		t.Errorf("completed=%d collisions=%d", res.Summary.Completed, res.Summary.Collisions)
	}
}
