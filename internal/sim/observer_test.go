package sim

import (
	"math/rand"
	"testing"

	"crossroads/internal/traffic"
	"crossroads/internal/vehicle"
)

func TestObserverSnapshots(t *testing.T) {
	arr, _ := traffic.ScaleScenario(1, rand.New(rand.NewSource(1)))
	snapshots := 0
	maxVehicles := 0
	var lastNow float64
	res, err := Run(Config{
		Policy:        vehicle.PolicyCrossroads,
		Seed:          1,
		ObserverEvery: 5,
		Observer: func(now float64, vs []VehicleView) {
			snapshots++
			if now < lastNow {
				t.Errorf("observer time went backward: %v after %v", now, lastNow)
			}
			lastNow = now
			if len(vs) > maxVehicles {
				maxVehicles = len(vs)
			}
			for _, v := range vs {
				if v.ID <= 0 || v.State == "" {
					t.Errorf("malformed view: %+v", v)
				}
				if v.Speed < 0 {
					t.Errorf("negative speed in view: %+v", v)
				}
			}
		},
	}, arr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Completed != len(arr) {
		t.Fatalf("completed %d", res.Summary.Completed)
	}
	if snapshots == 0 {
		t.Fatal("observer never called")
	}
	if maxVehicles != len(arr) {
		t.Errorf("max simultaneous vehicles seen = %d, want %d", maxVehicles, len(arr))
	}
}
