package sim

import (
	"testing"

	"crossroads/internal/plant"
	"crossroads/internal/topology"
	"crossroads/internal/trace"
	"crossroads/internal/vehicle"
)

// coordEventCount tallies the coordination plane's footprint in a trace:
// im.digest/im.defer events plus digest messages on the wire.
func coordEventCount(evs []trace.Event) int {
	n := 0
	for _, ev := range evs {
		if ev.Kind == trace.KindIMDigest || ev.Kind == trace.KindIMDefer || ev.MsgKind == "digest" {
			n++
		}
	}
	return n
}

// TestCoordOffByteIdenticalAcrossWorkers pins the coordination plane's
// zero-cost-when-off contract on the parallel kernel: with Coord unset the
// run carries no coordination events at all, and the full result — vehicle
// records, summary, network stats, canonicalized trace — is bit-identical
// at any kernel worker count (and therefore identical to pre-coordination
// builds, which the golden trace test pins separately).
func TestCoordOffByteIdenticalAcrossWorkers(t *testing.T) {
	grid22, err := topology.Grid(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	topo := grid22.WithSegmentLen(0.8)
	arr := topoWorkload(t, topo, 14, 17)
	run := func(workers int) (Result, []trace.Event) {
		rec := trace.NewFull()
		cfg, err := NewConfig(
			WithTopology(topo),
			WithPolicy(vehicle.PolicyCrossroads),
			WithSeed(17),
			WithNoise(plant.TestbedNoise()),
			WithKernel(KernelParallel),
			WithKernelWorkers(workers),
			WithTrace(rec),
		)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(cfg, arr)
		if err != nil {
			t.Fatal(err)
		}
		res.Summary.SchedulerWall = 0
		for k := range res.PerNode {
			res.PerNode[k].SchedulerWall = 0
		}
		evs := append([]trace.Event(nil), rec.Events()...)
		trace.CanonicalizeWall(evs)
		return res, evs
	}
	want, wantEvs := run(1)
	if n := coordEventCount(wantEvs); n != 0 {
		t.Fatalf("coord-off run carries %d coordination events", n)
	}
	for _, workers := range []int{2, 4} {
		got, gotEvs := run(workers)
		if got.Summary != want.Summary || got.Network != want.Network {
			t.Errorf("workers=%d: coord-off results differ:\n got %+v\nwant %+v",
				workers, got.Summary, want.Summary)
		}
		if len(gotEvs) != len(wantEvs) {
			t.Fatalf("workers=%d: trace length %d, want %d", workers, len(gotEvs), len(wantEvs))
		}
		for i := range wantEvs {
			if gotEvs[i] != wantEvs[i] {
				t.Fatalf("workers=%d: trace event %d differs:\n got %+v\nwant %+v",
					workers, i, gotEvs[i], wantEvs[i])
			}
		}
	}
}

// TestCoordOnDeterministicAcrossKernelWorkers extends the parallel
// kernel's determinism contract to the coordination plane: with digests,
// backpressure, and green-wave offsets armed on a fully stochastic
// configuration, results stay bit-identical at any worker count.
func TestCoordOnDeterministicAcrossKernelWorkers(t *testing.T) {
	grid22, err := topology.Grid(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	topo := grid22.WithSegmentLen(0.8)
	arr := topoWorkload(t, topo, 14, 19)
	run := func(workers int) (Result, []trace.Event) {
		rec := trace.NewFull()
		cfg, err := NewConfig(
			WithTopology(topo),
			WithPolicy(vehicle.PolicyCrossroads),
			WithSeed(19),
			WithNoise(plant.TestbedNoise()),
			WithCoordination(0),
			WithKernel(KernelParallel),
			WithKernelWorkers(workers),
			WithTrace(rec),
		)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(cfg, arr)
		if err != nil {
			t.Fatal(err)
		}
		if res.Kernel != "parallel" {
			t.Fatalf("ran on %q kernel", res.Kernel)
		}
		res.Summary.SchedulerWall = 0
		for k := range res.PerNode {
			res.PerNode[k].SchedulerWall = 0
		}
		evs := append([]trace.Event(nil), rec.Events()...)
		trace.CanonicalizeWall(evs)
		return res, evs
	}
	want, wantEvs := run(1)
	if want.Summary.Collisions != 0 {
		t.Errorf("collisions with coordination on: %d", want.Summary.Collisions)
	}
	if n := coordEventCount(wantEvs); n == 0 {
		t.Error("coordination armed but no digest traffic recorded")
	}
	for _, workers := range []int{2, 4} {
		got, gotEvs := run(workers)
		for i := range want.Vehicles {
			if got.Vehicles[i] != want.Vehicles[i] {
				t.Fatalf("workers=%d: vehicle record %d differs:\n got %+v\nwant %+v",
					workers, i, got.Vehicles[i], want.Vehicles[i])
			}
		}
		if got.Summary != want.Summary || got.Network != want.Network {
			t.Errorf("workers=%d: coord-on results differ:\n got %+v\nwant %+v",
				workers, got.Summary, want.Summary)
		}
		if len(gotEvs) != len(wantEvs) {
			t.Fatalf("workers=%d: trace length %d, want %d", workers, len(gotEvs), len(wantEvs))
		}
		for i := range wantEvs {
			if gotEvs[i] != wantEvs[i] {
				t.Fatalf("workers=%d: trace event %d differs:\n got %+v\nwant %+v",
					workers, i, gotEvs[i], wantEvs[i])
			}
		}
	}
}

// TestCoordDigestPeriodClampedToLookahead pins the parallel kernel's
// digest-cadence floor: a requested period far below the lookahead window
// is raised to it, so digests never force sub-lookahead synchronization —
// consecutive digest sends from any one IM are at least a window apart.
func TestCoordDigestPeriodClampedToLookahead(t *testing.T) {
	line3, err := topology.Line(3)
	if err != nil {
		t.Fatal(err)
	}
	topo := line3.WithSegmentLen(0.8)
	arr := topoWorkload(t, topo, 12, 23)
	maxSpeed := 0.0
	for _, a := range arr {
		if a.Params.MaxSpeed > maxSpeed {
			maxSpeed = a.Params.MaxSpeed
		}
	}
	lookahead := topo.SegmentLen() / maxSpeed
	rec := trace.NewFull()
	cfg, err := NewConfig(
		WithTopology(topo),
		WithPolicy(vehicle.PolicyCrossroads),
		WithSeed(23),
		WithCoordination(lookahead/100), // absurdly fast: must be clamped
		WithKernel(KernelParallel),
		WithTrace(rec),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg, arr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kernel != "parallel" {
		t.Fatalf("ran on %q kernel", res.Kernel)
	}
	lastSend := map[string]float64{}
	digests := 0
	for _, ev := range rec.Events() {
		if ev.Kind != trace.KindMsgSend || ev.MsgKind != "digest" {
			continue
		}
		digests++
		// One broadcast sends to every peer at the same instant; only
		// distinct broadcast times must be a full window apart.
		if prev, ok := lastSend[ev.From]; ok && ev.T != prev {
			if gap := ev.T - prev; gap < lookahead*(1-1e-9) {
				t.Fatalf("digest from %s sent %.6fs after the previous one; lookahead is %.6fs",
					ev.From, gap, lookahead)
			}
		}
		lastSend[ev.From] = ev.T
	}
	if digests == 0 {
		t.Fatal("no digest sends recorded")
	}
}

// TestCoordCleanOnBothKernels is the coordination safety gate: a
// coordinated corridor run completes every journey with zero collisions
// under both kernels, and the digest plane is demonstrably active.
func TestCoordCleanOnBothKernels(t *testing.T) {
	line3, err := topology.Line(3)
	if err != nil {
		t.Fatal(err)
	}
	topo := line3.WithSegmentLen(0.8)
	arr := topoWorkload(t, topo, 20, 29)
	for _, kernel := range []Kernel{KernelSerial, KernelParallel} {
		rec := trace.NewFull()
		cfg, err := NewConfig(
			WithTopology(topo),
			WithPolicy(vehicle.PolicyCrossroads),
			WithSeed(29),
			WithNoise(plant.TestbedNoise()),
			WithCoordination(0),
			WithKernel(kernel),
			WithTrace(rec),
		)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(cfg, arr)
		if err != nil {
			t.Fatal(err)
		}
		if res.Summary.Collisions != 0 || res.Summary.BufferViolations != 0 {
			t.Errorf("kernel %v: %d collisions, %d buffer violations with coordination on",
				kernel, res.Summary.Collisions, res.Summary.BufferViolations)
		}
		if res.Incomplete != 0 {
			t.Errorf("kernel %v: %d incomplete journeys with coordination on", kernel, res.Incomplete)
		}
		received := 0
		for _, ev := range rec.Events() {
			if ev.Kind == trace.KindIMDigest {
				received++
			}
		}
		if received == 0 {
			t.Errorf("kernel %v: no im.digest events — coordination never engaged", kernel)
		}
	}
}
