// Package sim assembles the full closed-loop simulation: the discrete-event
// kernel, the V2I network, a topology of intersections each managed by its
// own IM shard, and a fleet of vehicle agents with noisy plants and
// drifting clocks. It is the Go equivalent of the paper's Matlab simulators
// plus the physical-testbed effects (RTD, sync error, control error) those
// simulators abstracted away, generalized from the paper's single
// intersection to corridors and grids: vehicles follow routes through a
// sequence of intersections, re-entering the approach state machine at each
// one while their synchronized clock and plant state carry across segments.
package sim

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"

	_ "crossroads/internal/core" // register the crossroads policy
	"crossroads/internal/des"
	"crossroads/internal/fault"
	"crossroads/internal/geom"
	"crossroads/internal/im"
	_ "crossroads/internal/im/aim"     // register the aim policy
	_ "crossroads/internal/im/auction" // register the auction policy
	"crossroads/internal/im/batch"
	_ "crossroads/internal/im/dot"        // register the dot policy
	_ "crossroads/internal/im/signalized" // register the signalized policy
	_ "crossroads/internal/im/vtim"       // register the vt-im policy
	"crossroads/internal/intersection"
	"crossroads/internal/kinematics"
	"crossroads/internal/metrics"
	"crossroads/internal/network"
	"crossroads/internal/plant"
	"crossroads/internal/safety"
	"crossroads/internal/timesync"
	"crossroads/internal/topology"
	"crossroads/internal/trace"
	"crossroads/internal/traffic"
	"crossroads/internal/vehicle"
)

// Config describes one simulation run.
//
// Prefer building it with NewConfig and Options; struct-literal
// construction is deprecated (it still works — Run validates such configs
// on entry — but it postpones error reporting to run time and will not be
// extended with new invariants).
type Config struct {
	// Intersection geometry; zero value uses the scale model. Every
	// topology node reuses this geometry.
	Intersection intersection.Config
	// Topology is the road network; nil means topology.Single() — the
	// classic one-intersection experiments, bit-identical to the
	// pre-topology engine.
	Topology *topology.Topology
	// Policy selects the IM under test.
	Policy vehicle.Policy
	// Spec carries the uncertainty bounds (buffers, WC-RTD).
	Spec safety.Spec
	// Cost models IM computation delay.
	Cost im.CostModel
	// Delay is the network latency model; nil uses the testbed model.
	Delay network.DelayModel
	// LossProb injects message loss.
	LossProb float64
	// Faults, if non-nil, scripts fault windows onto the run (burst loss,
	// partitions, delay spikes, duplication, IM stalls) and arms both
	// protocol sides' degradation paths: vehicle grant-expiry failsafe and
	// IM lease expiry. The injector draws from its own Seed+6 stream, so a
	// faulted run samples the same delays and loss coins as its clean twin;
	// nil leaves the run byte-identical to a pre-fault build.
	Faults *fault.Schedule
	// Noise configures the plants; zero value is noiseless. Use
	// plant.TestbedNoise() for the calibrated testbed disturbance.
	Noise plant.NoiseConfig
	// PhysicsDt is the plant integration step (s); 0 means 10 ms.
	PhysicsDt float64
	// MaxSimTime caps the run; 0 derives it from the workload.
	MaxSimTime float64
	// Seed drives every stochastic component.
	Seed int64
	// ClockMaxOffset / ClockMaxDriftPPM bound the vehicles' raw clock
	// errors before NTP sync; zero values use 0.2 s and 20 ppm.
	ClockMaxOffset   float64
	ClockMaxDriftPPM float64
	// OmitRTDBuffer runs VT-IM without its RTD buffer — the UNSAFE
	// ablation demonstrating why the buffer exists. Valid only with
	// PolicyVTIM (the other policies have no such ablation).
	OmitRTDBuffer bool
	// AIMGridN and AIMTimeStep tune the AIM baseline; zero uses defaults.
	AIMGridN    int
	AIMTimeStep float64
	// PolicyParams carries generic per-policy tuning as namespaced
	// "<policy>.<knob>" keys (e.g. "dot.grid", "signalized.green"). Keys
	// belonging to policies other than the one under test are ignored, so
	// a sweep can share one map across its whole policy set; an unknown
	// knob under the running policy's namespace fails scheduler
	// construction with an error naming the policy and its known knobs.
	PolicyParams map[string]string
	// AgentOverrides, if non-nil, replaces the per-policy agent defaults.
	// The per-leg IM binding (IMEndpoint, Node) is still forced by the
	// world.
	AgentOverrides *vehicle.Config
	// CollisionEvery checks footprint overlaps every N physics ticks;
	// 0 means every 2 ticks.
	CollisionEvery int
	// Observer, if set, receives a snapshot of every active vehicle each
	// ObserverEvery physics ticks (default every 10). Visualizers and
	// examples use it; the snapshot slice is reused between calls.
	Observer      func(now float64, vehicles []VehicleView)
	ObserverEvery int
	// Trace, if set, receives the run's structured event stream: message
	// lifecycle, IM decisions, book mutations, vehicle state transitions,
	// spawns/exits, and safety violations. The recorder's clock is bound
	// to the run's simulated clock. nil disables tracing (zero overhead).
	Trace *trace.Recorder
	// TraceDES additionally traces every executed kernel event (the
	// physics-tick firehose); pair it with a ring-mode recorder.
	TraceDES bool
	// Kernel selects the event-execution engine. The zero value is the
	// serial kernel, bit-identical to every earlier build. KernelParallel
	// shards by topology node; single-node or zero-segment-length runs fall
	// back to serial (there is no lookahead to exploit).
	Kernel Kernel
	// KernelWorkers bounds the parallel kernel's concurrent shard
	// executors; 0 means one goroutine per shard. The result is identical
	// at any worker count. Setting it with the serial kernel is rejected.
	KernelWorkers int
	// KernelStrict turns the parallel kernel's serial fallback into an
	// error: a run that cannot actually engage the parallel kernel fails
	// instead of quietly running serial with a stderr warning. Setting it
	// with the serial kernel is rejected.
	KernelStrict bool
	// Coord arms the IM↔IM coordination plane on multi-node topologies:
	// every shard server broadcasts periodic link-state digests to its
	// neighbors and biases admission by theirs (downstream backpressure +
	// green-wave offsets, see internal/im/coord.go). Off — the default —
	// keeps runs byte-identical to pre-coordination builds; on a
	// single-node topology it is a harmless no-op (an IM has no peers).
	Coord bool
	// CoordPeriod overrides the digest broadcast period (s); 0 uses the
	// default. The parallel kernel raises the effective period to at
	// least its lookahead window. Setting it without Coord is rejected.
	CoordPeriod float64
	// PerfectClocks forces every vehicle clock to zero offset and drift
	// (overriding the defaulted error bounds) without perturbing RNG stream
	// consumption. The cross-kernel equivalence tests use it: with clock
	// error, plant noise, loss, and randomized delay all disabled, the
	// parallel kernel's per-vehicle results match the serial kernel's
	// exactly. Contradicts explicit nonzero WithClockError bounds.
	PerfectClocks bool

	// validated is set by NewConfig so Run skips re-validation. Configs
	// built as struct literals leave it false and are validated by Run.
	// Mutating a Config after NewConfig forfeits the guarantee.
	validated bool
}

// Validate rejects configurations that would silently run a different
// experiment than the caller intended. Zero values that mean "use the
// default" stay valid; contradictions and out-of-range knobs do not.
func (cfg Config) Validate() error {
	if cfg.OmitRTDBuffer && cfg.Policy != vehicle.PolicyVTIM {
		return fmt.Errorf("sim: OmitRTDBuffer is a VT-IM ablation; policy %v has no RTD buffer to omit", cfg.Policy)
	}
	if cfg.LossProb < 0 || cfg.LossProb >= 1 {
		return fmt.Errorf("sim: LossProb %v outside [0, 1)", cfg.LossProb)
	}
	if cfg.PhysicsDt < 0 {
		return fmt.Errorf("sim: negative PhysicsDt %v", cfg.PhysicsDt)
	}
	if cfg.MaxSimTime < 0 {
		return fmt.Errorf("sim: negative MaxSimTime %v", cfg.MaxSimTime)
	}
	if cfg.ClockMaxOffset < 0 {
		return fmt.Errorf("sim: negative ClockMaxOffset %v", cfg.ClockMaxOffset)
	}
	if cfg.ClockMaxDriftPPM < 0 {
		return fmt.Errorf("sim: negative ClockMaxDriftPPM %v", cfg.ClockMaxDriftPPM)
	}
	if cfg.CollisionEvery < 0 {
		return fmt.Errorf("sim: negative CollisionEvery %d", cfg.CollisionEvery)
	}
	if cfg.AIMGridN < 0 {
		return fmt.Errorf("sim: negative AIMGridN %d", cfg.AIMGridN)
	}
	if cfg.AIMTimeStep < 0 {
		return fmt.Errorf("sim: negative AIMTimeStep %v", cfg.AIMTimeStep)
	}
	if cfg.Policy != vehicle.PolicyAIM && (cfg.AIMGridN != 0 || cfg.AIMTimeStep != 0) {
		return fmt.Errorf("sim: AIM tuning (GridN=%d, TimeStep=%v) set for policy %v", cfg.AIMGridN, cfg.AIMTimeStep, cfg.Policy)
	}
	if err := im.ValidateParams(cfg.PolicyParams); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	if cfg.TraceDES && cfg.Trace == nil {
		return fmt.Errorf("sim: TraceDES requires a Trace recorder")
	}
	if cfg.Kernel != KernelSerial && cfg.Kernel != KernelParallel {
		return fmt.Errorf("sim: unknown kernel %v", cfg.Kernel)
	}
	if cfg.KernelWorkers < 0 {
		return fmt.Errorf("sim: negative KernelWorkers %d", cfg.KernelWorkers)
	}
	if cfg.KernelWorkers != 0 && cfg.Kernel != KernelParallel {
		return fmt.Errorf("sim: KernelWorkers=%d set for the %v kernel", cfg.KernelWorkers, cfg.Kernel)
	}
	if cfg.KernelStrict && cfg.Kernel != KernelParallel {
		return fmt.Errorf("sim: KernelStrict set for the %v kernel", cfg.Kernel)
	}
	if cfg.Kernel == KernelParallel && cfg.Observer != nil {
		return fmt.Errorf("sim: Observer callbacks are serial-kernel only (no global tick exists under the parallel kernel)")
	}
	if cfg.CoordPeriod < 0 {
		return fmt.Errorf("sim: negative CoordPeriod %v", cfg.CoordPeriod)
	}
	if cfg.CoordPeriod != 0 && !cfg.Coord {
		return fmt.Errorf("sim: CoordPeriod=%v set without Coord", cfg.CoordPeriod)
	}
	if cfg.PerfectClocks && (cfg.ClockMaxOffset > 0 || cfg.ClockMaxDriftPPM > 0) {
		return fmt.Errorf("sim: PerfectClocks contradicts explicit clock error bounds (offset=%v, drift=%v ppm)",
			cfg.ClockMaxOffset, cfg.ClockMaxDriftPPM)
	}
	if o := cfg.AgentOverrides; o != nil && o.MaxTimeout > 0 && o.MaxTimeout < o.ResponseTimeout {
		return fmt.Errorf("sim: AgentOverrides.MaxTimeout %v below ResponseTimeout %v would shrink, not grow, backoff",
			o.MaxTimeout, o.ResponseTimeout)
	}
	if err := cfg.Faults.Validate(); err != nil {
		return err
	}
	if cfg.Faults != nil {
		numNodes := 1
		if cfg.Topology != nil {
			numNodes = cfg.Topology.NumNodes()
		}
		for i, fw := range cfg.Faults.Windows {
			if fw.Kind == fault.Stall && fw.Node >= numNodes {
				return fmt.Errorf("sim: fault window %d stalls node %d; topology has %d nodes",
					i, fw.Node, numNodes)
			}
		}
	}
	return nil
}

// VehicleView is an observer snapshot of one active vehicle.
type VehicleView struct {
	ID       int64
	Pose     geom.Pose
	Speed    float64
	State    string
	Movement intersection.MovementID
	// Node is the topology node whose local frame Pose is expressed in.
	Node int
}

// Result is the outcome of one run.
type Result struct {
	Policy string
	// Kernel names the engine that actually executed the run ("serial" or
	// "parallel") — a parallel request that fell back reports "serial".
	Kernel  string
	Summary metrics.Summary
	Network network.Stats
	// Vehicles holds the end-to-end journey records in arrival order.
	Vehicles []metrics.VehicleRecord
	// PerNode holds one summary per topology node: the crossings of that
	// intersection alone, with wait measured against the vehicle's
	// unimpeded arrival at the node's transmission line. On single-
	// intersection runs PerNode[0] equals Summary's vehicle statistics.
	PerNode []metrics.Summary
	// Incomplete lists vehicles that never finished (0 for healthy runs).
	Incomplete int
	// FailsafeStopped counts the subset of Incomplete that ended the run
	// standing still on the approach, short of the intersection box — the
	// intended graceful-degradation outcome when a fault outlives the run.
	FailsafeStopped int
	// Stranded counts incomplete vehicles in any other state (moving, or
	// worse, inside the box). A resilient policy keeps this at zero.
	Stranded int
}

// vehState tracks one active vehicle along its route.
type vehState struct {
	arr   traffic.Arrival
	agent *vehicle.Agent
	plant *plant.Plant

	// legs/movs/turns describe the route; leg indexes the current one.
	legs  []topology.Leg
	movs  []*intersection.Movement
	turns []intersection.Turn
	leg   int
	node  int

	movement *intersection.Movement
	// jrec is the end-to-end journey record; nrec the current node's
	// crossing record. On single-node runs they are the same record.
	jrec *metrics.VehicleRecord
	nrec *metrics.VehicleRecord
	// legRetries0 snapshots the agent's cumulative retries at leg entry so
	// nrec can report the per-node delta.
	legRetries0 int

	entered bool
	done    bool
	// transit marks a vehicle cruising the road segment between two
	// nodes: it has despawned from the previous node's local frame and
	// re-enters the next one's at its scheduled arrival.
	transit bool
	// legArrive and legSpeed are the unimpeded arrival time and speed at
	// the next node's transmission line, fixed when transit begins.
	legArrive float64
	legSpeed  float64
	gone      bool
}

func (v *vehState) lastLeg() bool { return v.leg == len(v.legs)-1 }

// kernelFallbackWarn receives the warning emitted when a parallel-kernel
// request falls back to serial. It defaults to stderr; tests swap it.
var kernelFallbackWarn io.Writer = os.Stderr

// kernelFallbackReason explains why a parallel-kernel request cannot
// engage, or "" when it can: the parallel kernel needs a lookahead — a
// multi-node topology with a positive inter-node segment length.
func kernelFallbackReason(cfg *Config) string {
	switch {
	case cfg.Topology == nil || cfg.Topology.NumNodes() <= 1:
		return "topology has a single node (no shards to run concurrently)"
	case cfg.Topology.SegmentLen() <= 0:
		return "topology segment length is zero (no conservative lookahead window)"
	}
	return ""
}

// Run executes one full simulation of the workload under the configured
// policy and returns the aggregated result.
func Run(cfg Config, arrivals []traffic.Arrival) (Result, error) {
	if cfg.Kernel == KernelParallel {
		reason := kernelFallbackReason(&cfg)
		if reason == "" {
			w, err := newPWorld(cfg, arrivals)
			if err != nil {
				return Result{}, err
			}
			return w.run()
		}
		// The fallback used to be silent, which made "-kernel parallel"
		// benchmarks on a 1x1 topology look suspiciously flat. Name the
		// reason, and in strict mode refuse to run at all.
		if cfg.KernelStrict {
			return Result{}, fmt.Errorf("sim: parallel kernel unavailable: %s", reason)
		}
		fmt.Fprintf(kernelFallbackWarn,
			"sim: warning: falling back to the serial kernel: %s\n", reason)
	}
	w, err := newWorld(cfg, arrivals)
	if err != nil {
		return Result{}, err
	}
	return w.run()
}

// coordConfigFor resolves the coordination-plane settings for a run: the
// caller's period (raised to minPeriod — the parallel kernel passes its
// lookahead so digests never force sub-lookahead synchronization) and the
// segment transit estimate. Transit from granted box entry at one node to
// box entry at the next — entry→despawn upstream, the inter-node segment,
// then line→entry downstream — sums to one full straight-movement path
// plus the segment, covered at the fleet's cruise (top) speed.
func coordConfigFor(cfg *Config, arrivals []traffic.Arrival, x *intersection.Intersection, minPeriod float64) im.CoordConfig {
	ccfg := im.DefaultCoordConfig()
	if cfg.CoordPeriod > 0 {
		ccfg.Period = cfg.CoordPeriod
	}
	if ccfg.Period < minPeriod {
		ccfg.Period = minPeriod
	}
	cruise := 0.0
	for _, a := range arrivals {
		cruise = math.Max(cruise, a.Params.MaxSpeed)
	}
	m := x.Movement(intersection.MovementID{Approach: intersection.East, Lane: 0, Turn: intersection.Straight})
	if m != nil && cruise > 0 {
		ccfg.SegmentTransit = (m.Length + cfg.Topology.SegmentLen()) / cruise
	}
	return ccfg
}

// coordPeersFor resolves node k's slice of the coordination plane: the
// broadcast peer set (all adjacent IMs — grid adjacency is symmetric) and
// the downstream neighbor per exit direction.
func coordPeersFor(topo *topology.Topology, k int) ([]im.CoordPeer, map[intersection.Approach]im.CoordPeer) {
	var peers []im.CoordPeer
	downstream := make(map[intersection.Approach]im.CoordPeer)
	for _, e := range topo.OutEdges(topology.NodeID(k)) {
		p := im.CoordPeer{Node: int(e.To), Endpoint: im.NodeEndpoint(int(e.To))}
		peers = append(peers, p)
		downstream[e.Dir] = p
	}
	return peers, downstream
}

// worldNode is one intersection's IM shard and its node-local accounting.
type worldNode struct {
	server *im.Server
	col    *metrics.Collector
}

type world struct {
	cfg      Config
	arrivals []traffic.Arrival

	sim   *des.Simulator
	net   *network.Network
	x     *intersection.Intersection
	topo  *topology.Topology
	nodes []worldNode
	// col is the journey-level collector. On single-node runs it is the
	// same object as nodes[0].col, which keeps the classic results
	// bit-identical (every counter lands exactly where it used to).
	col *metrics.Collector

	rngClock *rand.Rand
	rngPlant *rand.Rand

	agentCfg vehicle.Config
	buffers  safety.Buffers

	active  []*vehState
	spawned int

	overlapping map[[2]int64]bool
	bufOverlap  map[[2]int64]bool
	tick        int
	// debug dumps collision context to stdout (diagnostic runs only).
	debug bool
	// views is the reusable observer snapshot buffer.
	views []VehicleView

	// Parallel-kernel fields; nil/zero on serial runs. Each shard of a
	// parallel run is one world scoped to a single topology node: pw links
	// back to the orchestrator, shardIdx is this shard's node, born keeps
	// every vehicle that spawned here (active drops vehicles mid-hop, so
	// end-of-run classification needs its own list), and departed records
	// where each hopped-away vehicle endpoint went so the network router
	// can chase V2I traffic across shards. departed is written and read
	// only by this shard's goroutine.
	pw       *pworld
	shardIdx int
	born     []*vehState
	departed map[string]int
}

func newWorld(cfg Config, arrivals []traffic.Arrival) (*world, error) {
	if !cfg.validated {
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
	}
	if len(arrivals) == 0 {
		return nil, fmt.Errorf("sim: empty workload")
	}
	if cfg.Intersection == (intersection.Config{}) {
		cfg.Intersection = intersection.ScaleModelConfig()
	}
	if cfg.Topology == nil {
		cfg.Topology = topology.Single()
	}
	if cfg.Spec == (safety.Spec{}) {
		cfg.Spec = safety.TestbedSpec()
	}
	if cfg.Cost == (im.CostModel{}) {
		cfg.Cost = im.TestbedCostModel()
	}
	if cfg.Delay == nil {
		cfg.Delay = network.TestbedDelay()
	}
	if cfg.PhysicsDt <= 0 {
		cfg.PhysicsDt = 0.01
	}
	if cfg.ClockMaxOffset <= 0 {
		cfg.ClockMaxOffset = 0.2
	}
	if cfg.ClockMaxDriftPPM <= 0 {
		cfg.ClockMaxDriftPPM = 20
	}
	if cfg.PerfectClocks {
		// Zero bounds, applied after defaulting: NewRandomClock still draws
		// its two uniforms per vehicle (stream consumption is unchanged) but
		// every clock comes out with zero offset and drift.
		cfg.ClockMaxOffset = 0
		cfg.ClockMaxDriftPPM = 0
	}
	if cfg.CollisionEvery <= 0 {
		cfg.CollisionEvery = 2
	}
	x, err := intersection.New(cfg.Intersection)
	if err != nil {
		return nil, err
	}
	sim := des.New()
	// The network draws delays from Seed+1 and loss coins from Seed+5:
	// independent streams, so a lossy or faulted run samples the exact
	// same per-message latencies as its clean twin.
	rngNet := rand.New(rand.NewSource(cfg.Seed + 1))
	rngLoss := rand.New(rand.NewSource(cfg.Seed + 5))
	net := network.New(sim, rngNet, rngLoss, cfg.Delay, cfg.LossProb)
	col := metrics.NewCollector()

	// Reference footprint: the largest vehicle in the workload.
	refLen, refWid := 0.0, 0.0
	numNodes := cfg.Topology.NumNodes()
	for _, a := range arrivals {
		if err := a.Params.Validate(); err != nil {
			return nil, fmt.Errorf("sim: arrival %d: %w", a.ID, err)
		}
		if a.Node < 0 || a.Node >= numNodes {
			return nil, fmt.Errorf("sim: arrival %d enters at node %d; topology %s has %d nodes",
				a.ID, a.Node, cfg.Topology, numNodes)
		}
		refLen = math.Max(refLen, a.Params.Length)
		refWid = math.Max(refWid, a.Params.Width)
	}

	opts := im.PolicyOptions{
		Spec:          cfg.Spec,
		Cost:          cfg.Cost,
		RefLength:     refLen,
		RefWidth:      refWid,
		OmitRTDBuffer: cfg.OmitRTDBuffer,
		AIMGridN:      cfg.AIMGridN,
		AIMTimeStep:   cfg.AIMTimeStep,
		Params:        cfg.PolicyParams,
	}
	// One IM shard per topology node, each with its own scheduler state and
	// RNG stream (node 0 keeps the classic Seed+2 stream), all sharing the
	// kernel and the V2I network.
	nodes := make([]worldNode, numNodes)
	for k := range nodes {
		nodeCol := col
		if numNodes > 1 {
			nodeCol = metrics.NewCollector()
		}
		rngIM := rand.New(rand.NewSource(cfg.Seed + 2 + 1000*int64(k)))
		sched, err := im.NewScheduler(cfg.Policy.String(), x, opts, rngIM)
		if err != nil {
			return nil, err
		}
		nodes[k] = worldNode{
			server: im.NewServerAt(sim, net, sched, nodeCol, im.NodeEndpoint(k), k),
			col:    nodeCol,
		}
	}

	if cfg.Coord && numNodes > 1 {
		ccfg := coordConfigFor(&cfg, arrivals, x, 0)
		for k := range nodes {
			peers, downstream := coordPeersFor(cfg.Topology, k)
			nodes[k].server.EnableCoordination(ccfg, peers, downstream)
		}
	}

	refParams := arrivals[0].Params
	for _, a := range arrivals {
		if a.Params.Length > refParams.Length {
			refParams = a.Params
		}
	}
	agentCfg := vehicle.DeriveConfig(cfg.Policy, cfg.Spec, refParams)
	if cfg.Policy == vehicle.PolicyBatch {
		// Batch replies are held for the re-organization window; budget
		// the retransmission timeout and the command latency accordingly.
		agentCfg.ResponseTimeout = batch.DefaultConfig().Window + cfg.Spec.WorstRTD + 0.05
		agentCfg.CommandLatency = batch.DefaultConfig().Window + cfg.Spec.WorstRTD
	}
	if cfg.AgentOverrides != nil {
		agentCfg = *cfg.AgentOverrides
	}
	// Tracing is wired after overrides so a caller-supplied agent config
	// cannot silently detach the run's recorder.
	agentCfg.Trace = cfg.Trace
	if cfg.Faults != nil {
		// The grant-expiry failsafe is armed only under fault injection
		// (also after overrides): a positive TTL changes vehicle control
		// flow, and clean runs must stay byte-identical to a fault-free
		// build.
		agentCfg.GrantTTL = cfg.Faults.ResolvedGrantTTL()
	}

	// The safety contract checked at runtime is on sensing-buffered
	// footprints for every policy: the RTD buffer is a *planning* margin
	// that absorbs execution-time deviation, so actual footprints inflated
	// by sensing+sync error must stay disjoint — that is what the paper's
	// buffers exist to guarantee.
	buffers := cfg.Spec.ForCrossroads()

	if cfg.Trace != nil {
		// Layers without a clock (the reservation book) stamp events via
		// the recorder's injected clock.
		cfg.Trace.Now = sim.Now
		net.SetTrace(cfg.Trace)
		for k := range nodes {
			nodes[k].server.SetTrace(cfg.Trace)
		}
		if cfg.TraceDES {
			sim.SetTrace(cfg.Trace)
		}
	}

	if cfg.Faults != nil {
		// The injector owns the Seed+6 stream; every server arms lease
		// expiry so a vehicle that vanishes mid-handshake is pruned instead
		// of blocking its lane FIFO forever. Window open/close events are
		// scheduled on the kernel: stalls toggle the target server, and
		// every window's edges land in the trace.
		net.SetInjector(fault.NewInjector(cfg.Faults, rand.New(rand.NewSource(cfg.Seed+6))))
		for k := range nodes {
			nodes[k].server.EnableLeaseExpiry(cfg.Faults.ResolvedLeaseTTL())
		}
		for _, fw := range cfg.Faults.Windows {
			fw := fw
			sim.At(fw.Start, func() {
				if fw.Kind == fault.Stall {
					nodes[fw.Node].server.SetStalled(true)
				}
				if cfg.Trace != nil {
					cfg.Trace.Emit(trace.Event{
						Kind: trace.KindFaultBegin, T: sim.Now(), Node: fw.Node,
						Detail: fw.Kind.String(),
					})
				}
			})
			sim.At(fw.End(), func() {
				if fw.Kind == fault.Stall {
					nodes[fw.Node].server.SetStalled(false)
				}
				if cfg.Trace != nil {
					cfg.Trace.Emit(trace.Event{
						Kind: trace.KindFaultEnd, T: sim.Now(), Node: fw.Node,
						Detail: fw.Kind.String(),
					})
				}
			})
		}
	}

	return &world{
		cfg:         cfg,
		arrivals:    arrivals,
		sim:         sim,
		net:         net,
		x:           x,
		topo:        cfg.Topology,
		nodes:       nodes,
		col:         col,
		rngClock:    rand.New(rand.NewSource(cfg.Seed + 3)),
		rngPlant:    rand.New(rand.NewSource(cfg.Seed + 4)),
		agentCfg:    agentCfg,
		buffers:     buffers,
		overlapping: make(map[[2]int64]bool),
		bufOverlap:  make(map[[2]int64]bool),
	}, nil
}

func (w *world) run() (Result, error) {
	maxLegs := 1
	for _, a := range w.arrivals {
		a := a
		w.sim.At(a.Time, func() { w.spawn(a) })
		if n := 1 + len(a.OnwardTurns); n > maxLegs {
			maxLegs = n
		}
	}
	maxTime := w.cfg.MaxSimTime
	if maxTime <= 0 {
		perLeg := 60 + 3*float64(len(w.arrivals))
		maxTime = w.arrivals[len(w.arrivals)-1].Time + perLeg*float64(maxLegs) +
			float64(maxLegs-1)*w.topo.SegmentLen()
		if w.cfg.Faults != nil {
			// Fault windows delay the fleet; give the derived horizon the
			// whole scripted period back so recovery is observable.
			maxTime += w.cfg.Faults.End()
		}
	}
	dt := w.cfg.PhysicsDt
	stop := w.sim.Ticker(w.arrivals[0].Time, dt, func() bool {
		w.step(dt)
		return w.spawned < len(w.arrivals) || len(w.active) > 0
	})
	w.sim.RunUntil(maxTime)
	stop()

	incomplete := 0
	failsafe := 0
	stranded := 0
	for _, v := range w.active {
		if v.jrec.Done {
			continue
		}
		incomplete++
		// A vehicle that ends the run standing still on the approach, short
		// of the box, degraded gracefully; anything else — still moving, in
		// transit between nodes, or caught inside the box — is stranded.
		if !v.transit && !v.entered && v.plant.V() < 0.05 {
			failsafe++
		} else {
			stranded++
		}
	}
	st := w.net.TotalStats()
	w.col.Messages = st.Sent
	w.col.Bytes = st.Bytes
	if len(w.nodes) > 1 {
		// Fold the per-node scheduler and safety counters into the journey
		// view (single-node runs share the collector, so there is nothing
		// to fold).
		for _, n := range w.nodes {
			w.col.AbsorbCounters(n.col)
		}
	}
	var vehicles []metrics.VehicleRecord
	for _, r := range w.col.Records() {
		vehicles = append(vehicles, *r)
	}
	perNode := make([]metrics.Summary, len(w.nodes))
	for k := range w.nodes {
		perNode[k] = w.nodes[k].col.Summarize()
	}
	return Result{
		Policy:          w.nodes[0].server.Scheduler().Name(),
		Kernel:          KernelSerial.String(),
		Summary:         w.col.Summarize(),
		Network:         st,
		Vehicles:        vehicles,
		PerNode:         perNode,
		Incomplete:      incomplete,
		FailsafeStopped: failsafe,
		Stranded:        stranded,
	}, nil
}

// route resolves an arrival's turn list against the topology.
func (w *world) route(a traffic.Arrival) (legs []topology.Leg, movs []*intersection.Movement, turns []intersection.Turn) {
	turns = make([]intersection.Turn, 0, 1+len(a.OnwardTurns))
	turns = append(turns, a.Movement.Turn)
	turns = append(turns, a.OnwardTurns...)
	legs = w.topo.Route(topology.NodeID(a.Node), a.Movement.Approach, turns)
	if len(legs) == 0 {
		panic(fmt.Sprintf("sim: arrival %d has no route from node %d approach %v", a.ID, a.Node, a.Movement.Approach))
	}
	movs = make([]*intersection.Movement, len(legs))
	for k, leg := range legs {
		id := intersection.MovementID{Approach: leg.Approach, Lane: a.Movement.Lane, Turn: turns[k]}
		movs[k] = w.x.Movement(id)
		if movs[k] == nil {
			panic(fmt.Sprintf("sim: arrival %d references unknown movement %v", a.ID, id))
		}
	}
	return legs, movs, turns[:len(legs)]
}

func (w *world) spawn(a traffic.Arrival) {
	legs, movs, turns := w.route(a)
	m := movs[0]
	// Gate the spawn on the queue tail: a vehicle cannot materialize at
	// speed right behind a standing queue — upstream it would have slowed
	// or stopped. Cap the entry speed at the safe-approach envelope and
	// defer entirely when the queue reaches back to the transmission line.
	speed := a.Speed
	if tail := w.queueTail(a.Node, m.ID); tail != nil {
		gap := tail.plant.S() - (tail.plant.Params.Length+a.Params.Length)/2 - w.agentCfg.MinGap
		if gap < 0.05 {
			w.sim.After(0.25, func() { w.spawn(a) })
			return
		}
		vSafe := vehicle.SafeFollowSpeed(gap, tail.plant.V(), tail.plant.Params.MaxDecel,
			a.Params.MaxDecel, w.agentCfg.HeadwayTau)
		speed = math.Min(speed, vSafe)
	}
	w.spawned++
	if w.cfg.Trace != nil {
		w.cfg.Trace.Emit(trace.Event{
			Kind: trace.KindSimSpawn, T: w.sim.Now(), Vehicle: a.ID, Node: a.Node,
			Detail: a.Movement.String(), Value: speed,
		})
	}
	pl, err := plant.New(m.Path, a.Params, 0, speed, w.cfg.Noise, w.rngPlant)
	if err != nil {
		panic(fmt.Sprintf("sim: plant for %d: %v", a.ID, err))
	}
	clk := timesync.NewSyncedClock(
		timesync.NewRandomClock(w.rngClock, w.cfg.ClockMaxOffset, w.cfg.ClockMaxDriftPPM), 8)

	vs := &vehState{arr: a, plant: pl, movement: m, legs: legs, movs: movs, turns: turns, node: a.Node}
	acfg := w.agentCfg
	acfg.IMEndpoint = im.NodeEndpoint(a.Node)
	acfg.Node = a.Node
	agent, err := vehicle.New(a.ID, m, pl, clk, acfg, w.sim, w.net, w.leaderFor(vs))
	if err != nil {
		panic(fmt.Sprintf("sim: agent for %d: %v", a.ID, err))
	}
	vs.agent = agent

	jrec := w.col.Vehicle(a.ID)
	jrec.Movement = a.Movement.String()
	// Wait time is measured from the *intended* transmission-line arrival,
	// so time spent queuing behind a backed-up lane counts as delay.
	jrec.SpawnTime = a.Time
	// Journey free flow covers the full route: each non-final leg's local
	// path plus the inter-node segment, then the final leg to box exit.
	total := movs[len(movs)-1].ExitS + a.Params.Length/2
	for k := 0; k < len(movs)-1; k++ {
		total += movs[k].Length + w.topo.SegmentLen()
	}
	eta, _, _ := kinematics.EarliestArrival(0, total, a.Speed, a.Params)
	jrec.FreeFlowTime = eta
	vs.jrec = jrec

	nrec := jrec
	if len(w.nodes) > 1 {
		nrec = w.nodes[a.Node].col.Vehicle(a.ID)
		nrec.Movement = m.ID.String()
		nrec.SpawnTime = a.Time
		legEta, _, _ := kinematics.EarliestArrival(0, m.ExitS+a.Params.Length/2, a.Speed, a.Params)
		nrec.FreeFlowTime = legEta
	}
	vs.nrec = nrec

	w.active = append(w.active, vs)
	if w.pw != nil {
		w.born = append(w.born, vs)
	}
	agent.Start()
}

// beginTransit despawns a vehicle from its current node's local frame and
// schedules its arrival at the next node's transmission line, carrying the
// exit speed across the connecting segment.
func (w *world) beginTransit(v *vehState) {
	v.transit = true
	eta, vArr, _ := kinematics.EarliestArrival(0, w.topo.SegmentLen(), v.plant.V(), v.plant.Params)
	v.legArrive = w.sim.Now() + eta
	v.legSpeed = vArr
	if w.pw != nil {
		// Cross-shard hop: the transit time is at least the kernel lookahead
		// (eta >= SegmentLen/maxSpeed), so the arrival event clears the
		// conservative synchronization contract and lands at its exact time.
		w.pw.hop(w, v)
		return
	}
	w.sim.After(eta, func() { w.enterLeg(v) })
}

// enterLeg re-enters a transiting vehicle at the next node on its route,
// with the same spawn gating as a fresh arrival: a queue reaching back to
// the transmission line defers entry, otherwise the entry speed is capped
// by the safe-following envelope behind the queue tail.
func (w *world) enterLeg(v *vehState) {
	leg := v.leg + 1
	m := v.movs[leg]
	node := int(v.legs[leg].Node)
	speed := v.legSpeed
	if tail := w.queueTail(node, m.ID); tail != nil {
		gap := tail.plant.S() - (tail.plant.Params.Length+v.plant.Params.Length)/2 - w.agentCfg.MinGap
		if gap < 0.05 {
			w.sim.After(0.25, func() { w.enterLeg(v) })
			return
		}
		vSafe := vehicle.SafeFollowSpeed(gap, tail.plant.V(), tail.plant.Params.MaxDecel,
			v.plant.Params.MaxDecel, w.agentCfg.HeadwayTau)
		speed = math.Min(speed, vSafe)
	}
	pl, err := plant.New(m.Path, v.plant.Params, 0, speed, w.cfg.Noise, w.rngPlant)
	if err != nil {
		panic(fmt.Sprintf("sim: leg plant for %d: %v", v.arr.ID, err))
	}
	v.leg = leg
	v.node = node
	v.movement = m
	v.plant = pl
	v.entered = false
	v.done = false
	v.transit = false
	v.legRetries0 = v.agent.Retries

	nrec := w.nodes[node].col.Vehicle(v.arr.ID)
	nrec.Movement = m.ID.String()
	nrec.SpawnTime = v.legArrive
	legEta, _, _ := kinematics.EarliestArrival(0, m.ExitS+v.plant.Params.Length/2, v.legSpeed, v.plant.Params)
	nrec.FreeFlowTime = legEta
	v.nrec = nrec

	if w.cfg.Trace != nil {
		w.cfg.Trace.Emit(trace.Event{
			Kind: trace.KindSimHop, T: w.sim.Now(), Vehicle: v.arr.ID, Node: node,
			Detail: m.ID.String(), Value: speed,
		})
	}
	if w.pw != nil {
		// The vehicle arrives from another shard: adopt it into this shard's
		// active population and rebind its agent to this shard's kernel,
		// network, and recorder before the protocol restarts.
		w.active = append(w.active, v)
		v.agent.Rebind(w.sim, w.net, w.cfg.Trace)
	}
	v.agent.BeginLeg(m, pl, im.NodeEndpoint(node), node)
}

// queueTail returns the rearmost active vehicle on the node's entry lane
// that is still on the approach, or nil.
func (w *world) queueTail(node int, mv intersection.MovementID) *vehState {
	var tail *vehState
	minS := math.Inf(1)
	for _, v := range w.active {
		if v.gone || v.transit || v.node != node {
			continue
		}
		if v.movement.ID.Approach == mv.Approach && v.movement.ID.Lane == mv.Lane &&
			v.plant.S() < v.movement.EnterS && v.plant.S() < minS {
			minS = v.plant.S()
			tail = v
		}
	}
	return tail
}

// leaderFor builds the car-following oracle for one vehicle: the nearest
// vehicle ahead in the same corridor (shared approach lane before the box,
// shared exit lane after it, or the identical movement throughout) at the
// same topology node.
func (w *world) leaderFor(self *vehState) vehicle.LeaderFunc {
	return func() (vehicle.LeaderInfo, bool) {
		// Under the parallel kernel the vehicle migrates between shard
		// worlds; resolve the active list through its *current* node (the
		// closure only ever runs on the owning shard's goroutine).
		aw := w
		if w.pw != nil {
			aw = w.pw.shards[self.node]
		}
		sSelf := self.plant.S()
		best := vehicle.LeaderInfo{Gap: math.Inf(1)}
		found := false
		for _, o := range aw.active {
			if o == self || o.gone || o.transit || o.node != self.node {
				continue
			}
			gap, merge, ok := corridorGap(self, o, sSelf)
			if ok && gap < best.Gap {
				best = vehicle.LeaderInfo{
					Gap:   gap,
					Speed: o.plant.V(),
					Decel: o.plant.Params.MaxDecel,
					Merge: merge,
				}
				found = true
			}
		}
		return best, found
	}
}

// corridorGap returns the bumper-to-bumper distance from self to other if
// other is ahead of self in the same driving corridor. Inside the box
// itself the reservation system owns separation: a vehicle must never stop
// there for car-following, or it breaks its own reservation and gridlocks
// the intersection.
func corridorGap(self, other *vehState, sSelf float64) (gap float64, merge, ok bool) {
	sm, om := self.movement, other.movement
	halfSum := (self.plant.Params.Length + other.plant.Params.Length) / 2
	sOther := other.plant.S()

	if sSelf < sm.EnterS {
		// On the approach: follow anything ahead on the same entry lane
		// that has not yet cleared the box (its in-box arc length is a
		// close proxy for corridor distance near the entry).
		sameEntry := sm.ID.Approach == om.ID.Approach && sm.ID.Lane == om.ID.Lane
		if sameEntry && sOther > sSelf && sOther < om.ExitS {
			return sOther - sSelf - halfSum, false, true
		}
		return 0, false, false
	}
	if sSelf >= sm.ExitS {
		// Past the box: follow along the shared exit lane.
		sameExit := sm.Exit == om.Exit && sm.ID.Lane == om.ID.Lane
		if sameExit {
			rs := sSelf - sm.ExitS
			ro := sOther - om.ExitS
			if ro > rs && sOther >= om.ExitS {
				return ro - rs - halfSum, true, true
			}
		}
		return 0, false, false
	}
	// Inside the box: cross-traffic separation is the reservation
	// system's job, but a vehicle already *past* the box on our exit lane
	// is a physical obstacle we must not catch — and since done vehicles
	// accelerate away, yielding to them cannot stall us in the box.
	sameExit := sm.Exit == om.Exit && sm.ID.Lane == om.ID.Lane
	if sameExit && sOther >= om.ExitS {
		rs := sSelf - sm.ExitS
		ro := sOther - om.ExitS
		if ro > rs {
			return ro - rs - halfSum, true, true
		}
	}
	return 0, false, false
}

func (w *world) step(dt float64) {
	now := w.sim.Now()
	// Control + physics.
	for _, v := range w.active {
		if v.gone || v.transit {
			continue
		}
		vCmd := v.agent.ControlStep(now, dt)
		v.plant.Step(vCmd, dt)
	}
	// Lifecycle transitions.
	kept := w.active[:0]
	for _, v := range w.active {
		if v.transit {
			kept = append(kept, v)
			continue
		}
		s := v.plant.S()
		if !v.entered && s >= v.movement.EnterS {
			v.entered = true
			v.nrec.EnterTime = now
		}
		if !v.done && s >= v.movement.ExitS+v.plant.Params.Length/2 {
			v.done = true
			v.nrec.ExitTime = now
			v.nrec.Done = true
			v.nrec.Retries = v.agent.Retries - v.legRetries0
			if v.lastLeg() {
				v.jrec.ExitTime = now
				v.jrec.Done = true
				v.jrec.Retries = v.agent.Retries
			}
			if w.cfg.Trace != nil {
				w.cfg.Trace.Emit(trace.Event{
					Kind: trace.KindSimExit, T: now, Vehicle: v.arr.ID, Node: v.node,
					Detail: v.movement.ID.String(),
				})
			}
			v.agent.NotifyExit()
		}
		if s >= v.movement.Length-1e-6 {
			if v.lastLeg() {
				v.gone = true
				v.jrec.Retries = v.agent.Retries
				v.agent.Stop()
				if w.pw != nil {
					w.pw.remaining.Add(-1)
				}
				continue
			}
			w.beginTransit(v)
			if w.pw != nil {
				// The vehicle now belongs to its destination shard; its
				// arrival there re-adds it to that shard's active list.
				continue
			}
		}
		kept = append(kept, v)
	}
	w.active = kept

	w.tick++
	if w.tick%w.cfg.CollisionEvery == 0 {
		w.checkCollisions()
	}
	if w.cfg.Observer != nil {
		every := w.cfg.ObserverEvery
		if every <= 0 {
			every = 10
		}
		if w.tick%every == 0 {
			w.views = w.views[:0]
			for _, v := range w.active {
				if v.transit {
					continue
				}
				w.views = append(w.views, VehicleView{
					ID:       v.arr.ID,
					Pose:     v.plant.Pose(),
					Speed:    v.plant.V(),
					State:    v.agent.State().String(),
					Movement: v.movement.ID,
					Node:     v.node,
				})
			}
			w.cfg.Observer(now, w.views)
		}
	}
}

// checkCollisions counts physical body overlaps (anywhere) and planning-
// buffer overlaps between cross traffic near the box — the safety contract
// the IM policies must uphold. Plants live in their node's local frame, so
// only same-node pairs are compared; violations are charged to the node
// where they happened.
func (w *world) checkCollisions() {
	box := w.x.Box().Expand(w.buffers.Long + 0.5)
	for i := 0; i < len(w.active); i++ {
		vi := w.active[i]
		if vi.transit {
			continue
		}
		fi := vi.plant.Footprint()
		bi := fi.Inflate(w.buffers.Long, w.buffers.Lat)
		for j := i + 1; j < len(w.active); j++ {
			vj := w.active[j]
			if vj.transit || vj.node != vi.node {
				continue
			}
			key := [2]int64{vi.arr.ID, vj.arr.ID}
			fj := vj.plant.Footprint()

			phys := fi.Intersects(fj)
			if phys && !w.overlapping[key] {
				w.nodes[vi.node].col.Collisions++
				if w.cfg.Trace != nil {
					w.cfg.Trace.Emit(trace.Event{
						Kind: trace.KindSimCollision, T: w.sim.Now(), Node: vi.node,
						Vehicle: vi.arr.ID, Other: vj.arr.ID,
					})
				}
				if w.debug {
					fmt.Printf("[%.2f] collision veh%d(%v s=%.2f v=%.2f st=%v) x veh%d(%v s=%.2f v=%.2f st=%v)\n",
						w.sim.Now(),
						vi.arr.ID, vi.movement.ID, vi.plant.S(), vi.plant.V(), vi.agent.State(),
						vj.arr.ID, vj.movement.ID, vj.plant.S(), vj.plant.V(), vj.agent.State())
					pi, pj := vi.plant.Pose(), vj.plant.Pose()
					fmt.Printf("    pos(veh%d)=(%.2f,%.2f h=%.2f) pos(veh%d)=(%.2f,%.2f h=%.2f)\n",
						vi.arr.ID, pi.Pos.X, pi.Pos.Y, pi.Heading, vj.arr.ID, pj.Pos.X, pj.Pos.Y, pj.Heading)
				}
			}
			w.overlapping[key] = phys

			// Buffer contract: only cross-approach pairs near the box are
			// the IM's responsibility (same-lane spacing is car following).
			if vi.movement.ID.Approach != vj.movement.ID.Approach &&
				box.Overlaps(fi.AABB()) && box.Overlaps(fj.AABB()) {
				bj := fj.Inflate(w.buffers.Long, w.buffers.Lat)
				buf := bi.Intersects(bj)
				if buf && !w.bufOverlap[key] {
					w.nodes[vi.node].col.BufferViolations++
					if w.cfg.Trace != nil {
						w.cfg.Trace.Emit(trace.Event{
							Kind: trace.KindSimBufViol, T: w.sim.Now(), Node: vi.node,
							Vehicle: vi.arr.ID, Other: vj.arr.ID,
						})
					}
					if w.debug {
						fmt.Printf("[%.2f] bufviol veh%d(%v s=%.2f v=%.2f st=%v) x veh%d(%v s=%.2f v=%.2f st=%v)\n",
							w.sim.Now(),
							vi.arr.ID, vi.movement.ID, vi.plant.S(), vi.plant.V(), vi.agent.State(),
							vj.arr.ID, vj.movement.ID, vj.plant.S(), vj.plant.V(), vj.agent.State())
					}
				}
				w.bufOverlap[key] = buf
			}
		}
	}
}
