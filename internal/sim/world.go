// Package sim assembles the full closed-loop simulation: the discrete-event
// kernel, the V2I network, the intersection geometry, one of the three IM
// policies, and a fleet of vehicle agents with noisy plants and drifting
// clocks. It is the Go equivalent of the paper's Matlab simulators plus the
// physical-testbed effects (RTD, sync error, control error) those
// simulators abstracted away.
package sim

import (
	"fmt"
	"math"
	"math/rand"

	"crossroads/internal/core"
	"crossroads/internal/des"
	"crossroads/internal/geom"
	"crossroads/internal/im"
	"crossroads/internal/im/aim"
	"crossroads/internal/im/batch"
	"crossroads/internal/im/vtim"
	"crossroads/internal/intersection"
	"crossroads/internal/kinematics"
	"crossroads/internal/metrics"
	"crossroads/internal/network"
	"crossroads/internal/plant"
	"crossroads/internal/safety"
	"crossroads/internal/timesync"
	"crossroads/internal/trace"
	"crossroads/internal/traffic"
	"crossroads/internal/vehicle"
)

// Config describes one simulation run.
type Config struct {
	// Intersection geometry; zero value uses the scale model.
	Intersection intersection.Config
	// Policy selects the IM under test.
	Policy vehicle.Policy
	// Spec carries the uncertainty bounds (buffers, WC-RTD).
	Spec safety.Spec
	// Cost models IM computation delay.
	Cost im.CostModel
	// Delay is the network latency model; nil uses the testbed model.
	Delay network.DelayModel
	// LossProb injects message loss.
	LossProb float64
	// Noise configures the plants; zero value is noiseless. Use
	// plant.TestbedNoise() for the calibrated testbed disturbance.
	Noise plant.NoiseConfig
	// PhysicsDt is the plant integration step (s); 0 means 10 ms.
	PhysicsDt float64
	// MaxSimTime caps the run; 0 derives it from the workload.
	MaxSimTime float64
	// Seed drives every stochastic component.
	Seed int64
	// ClockMaxOffset / ClockMaxDriftPPM bound the vehicles' raw clock
	// errors before NTP sync; zero values use 0.2 s and 20 ppm.
	ClockMaxOffset   float64
	ClockMaxDriftPPM float64
	// OmitRTDBuffer runs VT-IM without its RTD buffer — the UNSAFE
	// ablation demonstrating why the buffer exists.
	OmitRTDBuffer bool
	// AIMGridN and AIMTimeStep tune the AIM baseline; zero uses defaults.
	AIMGridN    int
	AIMTimeStep float64
	// AgentOverrides, if non-nil, replaces the per-policy agent defaults.
	AgentOverrides *vehicle.Config
	// CollisionEvery checks footprint overlaps every N physics ticks;
	// 0 means every 2 ticks.
	CollisionEvery int
	// Observer, if set, receives a snapshot of every active vehicle each
	// ObserverEvery physics ticks (default every 10). Visualizers and
	// examples use it; the snapshot slice is reused between calls.
	Observer      func(now float64, vehicles []VehicleView)
	ObserverEvery int
	// Trace, if set, receives the run's structured event stream: message
	// lifecycle, IM decisions, book mutations, vehicle state transitions,
	// spawns/exits, and safety violations. The recorder's clock is bound
	// to the run's simulated clock. nil disables tracing (zero overhead).
	Trace *trace.Recorder
	// TraceDES additionally traces every executed kernel event (the
	// physics-tick firehose); pair it with a ring-mode recorder.
	TraceDES bool
}

// VehicleView is an observer snapshot of one active vehicle.
type VehicleView struct {
	ID       int64
	Pose     geom.Pose
	Speed    float64
	State    string
	Movement intersection.MovementID
}

// Result is the outcome of one run.
type Result struct {
	Policy  string
	Summary metrics.Summary
	Network network.Stats
	// Vehicles holds the per-vehicle records in arrival order.
	Vehicles []metrics.VehicleRecord
	// Incomplete lists vehicles that never finished (0 for healthy runs).
	Incomplete int
}

// vehState tracks one active vehicle.
type vehState struct {
	arr      traffic.Arrival
	agent    *vehicle.Agent
	plant    *plant.Plant
	movement *intersection.Movement
	rec      *metrics.VehicleRecord
	entered  bool
	done     bool
	gone     bool
}

// Run executes one full simulation of the workload under the configured
// policy and returns the aggregated result.
func Run(cfg Config, arrivals []traffic.Arrival) (Result, error) {
	w, err := newWorld(cfg, arrivals)
	if err != nil {
		return Result{}, err
	}
	return w.run()
}

type world struct {
	cfg      Config
	arrivals []traffic.Arrival

	sim    *des.Simulator
	net    *network.Network
	x      *intersection.Intersection
	server *im.Server
	col    *metrics.Collector

	rngClock *rand.Rand
	rngPlant *rand.Rand

	agentCfg vehicle.Config
	buffers  safety.Buffers

	active  []*vehState
	spawned int

	overlapping map[[2]int64]bool
	bufOverlap  map[[2]int64]bool
	tick        int
	// debug dumps collision context to stdout (diagnostic runs only).
	debug bool
	// views is the reusable observer snapshot buffer.
	views []VehicleView
}

func newWorld(cfg Config, arrivals []traffic.Arrival) (*world, error) {
	if len(arrivals) == 0 {
		return nil, fmt.Errorf("sim: empty workload")
	}
	if cfg.Intersection == (intersection.Config{}) {
		cfg.Intersection = intersection.ScaleModelConfig()
	}
	if cfg.Spec == (safety.Spec{}) {
		cfg.Spec = safety.TestbedSpec()
	}
	if cfg.Cost == (im.CostModel{}) {
		cfg.Cost = im.TestbedCostModel()
	}
	if cfg.Delay == nil {
		cfg.Delay = network.TestbedDelay()
	}
	if cfg.PhysicsDt <= 0 {
		cfg.PhysicsDt = 0.01
	}
	if cfg.ClockMaxOffset <= 0 {
		cfg.ClockMaxOffset = 0.2
	}
	if cfg.ClockMaxDriftPPM <= 0 {
		cfg.ClockMaxDriftPPM = 20
	}
	if cfg.CollisionEvery <= 0 {
		cfg.CollisionEvery = 2
	}
	x, err := intersection.New(cfg.Intersection)
	if err != nil {
		return nil, err
	}
	sim := des.New()
	rngNet := rand.New(rand.NewSource(cfg.Seed + 1))
	rngIM := rand.New(rand.NewSource(cfg.Seed + 2))
	net := network.New(sim, rngNet, cfg.Delay, cfg.LossProb)
	col := metrics.NewCollector()

	// Reference footprint: the largest vehicle in the workload.
	refLen, refWid := 0.0, 0.0
	for _, a := range arrivals {
		if err := a.Params.Validate(); err != nil {
			return nil, fmt.Errorf("sim: arrival %d: %w", a.ID, err)
		}
		refLen = math.Max(refLen, a.Params.Length)
		refWid = math.Max(refWid, a.Params.Width)
	}

	var sched im.Scheduler
	switch cfg.Policy {
	case vehicle.PolicyVTIM:
		c := vtim.DefaultConfig()
		c.Spec = cfg.Spec
		c.Cost = cfg.Cost
		c.RefLength, c.RefWidth = refLen, refWid
		c.OmitRTDBuffer = cfg.OmitRTDBuffer
		sched, err = vtim.New(x, c, rngIM)
	case vehicle.PolicyCrossroads:
		c := core.DefaultConfig()
		c.Spec = cfg.Spec
		c.Cost = cfg.Cost
		c.RefLength, c.RefWidth = refLen, refWid
		sched, err = core.New(x, c, rngIM)
	case vehicle.PolicyBatch:
		c := batch.DefaultConfig()
		c.Spec = cfg.Spec
		c.Cost = cfg.Cost
		c.RefLength, c.RefWidth = refLen, refWid
		sched, err = batch.New(x, c, rngIM)
	case vehicle.PolicyAIM:
		c := aim.DefaultConfig()
		c.Spec = cfg.Spec
		c.Cost = cfg.Cost
		if cfg.AIMGridN > 0 {
			c.GridN = cfg.AIMGridN
		}
		if cfg.AIMTimeStep > 0 {
			c.TimeStep = cfg.AIMTimeStep
		}
		sched, err = aim.New(x, c, rngIM)
	default:
		return nil, fmt.Errorf("sim: unknown policy %v", cfg.Policy)
	}
	if err != nil {
		return nil, err
	}

	refParams := arrivals[0].Params
	for _, a := range arrivals {
		if a.Params.Length > refParams.Length {
			refParams = a.Params
		}
	}
	agentCfg := vehicle.DeriveConfig(cfg.Policy, cfg.Spec, refParams)
	if cfg.Policy == vehicle.PolicyBatch {
		// Batch replies are held for the re-organization window; budget
		// the retransmission timeout and the command latency accordingly.
		agentCfg.ResponseTimeout = batch.DefaultConfig().Window + cfg.Spec.WorstRTD + 0.05
		agentCfg.CommandLatency = batch.DefaultConfig().Window + cfg.Spec.WorstRTD
	}
	if cfg.AgentOverrides != nil {
		agentCfg = *cfg.AgentOverrides
	}
	// Tracing is wired after overrides so a caller-supplied agent config
	// cannot silently detach the run's recorder.
	agentCfg.Trace = cfg.Trace

	// The safety contract checked at runtime is on sensing-buffered
	// footprints for every policy: the RTD buffer is a *planning* margin
	// that absorbs execution-time deviation, so actual footprints inflated
	// by sensing+sync error must stay disjoint — that is what the paper's
	// buffers exist to guarantee.
	buffers := cfg.Spec.ForCrossroads()

	server := im.NewServer(sim, net, sched, col)
	if cfg.Trace != nil {
		// Layers without a clock (the reservation book) stamp events via
		// the recorder's injected clock.
		cfg.Trace.Now = sim.Now
		net.SetTrace(cfg.Trace)
		server.SetTrace(cfg.Trace)
		if cfg.TraceDES {
			sim.SetTrace(cfg.Trace)
		}
	}

	return &world{
		cfg:         cfg,
		arrivals:    arrivals,
		sim:         sim,
		net:         net,
		x:           x,
		server:      server,
		col:         col,
		rngClock:    rand.New(rand.NewSource(cfg.Seed + 3)),
		rngPlant:    rand.New(rand.NewSource(cfg.Seed + 4)),
		agentCfg:    agentCfg,
		buffers:     buffers,
		overlapping: make(map[[2]int64]bool),
		bufOverlap:  make(map[[2]int64]bool),
	}, nil
}

func (w *world) run() (Result, error) {
	for _, a := range w.arrivals {
		a := a
		w.sim.At(a.Time, func() { w.spawn(a) })
	}
	maxTime := w.cfg.MaxSimTime
	if maxTime <= 0 {
		maxTime = w.arrivals[len(w.arrivals)-1].Time + 60 + 3*float64(len(w.arrivals))
	}
	dt := w.cfg.PhysicsDt
	stop := w.sim.Ticker(w.arrivals[0].Time, dt, func() bool {
		w.step(dt)
		return w.spawned < len(w.arrivals) || len(w.active) > 0
	})
	w.sim.RunUntil(maxTime)
	stop()

	incomplete := 0
	for _, v := range w.active {
		if !v.rec.Done {
			incomplete++
		}
	}
	st := w.net.TotalStats()
	w.col.Messages = st.Sent
	w.col.Bytes = st.Bytes
	var vehicles []metrics.VehicleRecord
	for _, r := range w.col.Records() {
		vehicles = append(vehicles, *r)
	}
	return Result{
		Policy:     w.server.Scheduler().Name(),
		Summary:    w.col.Summarize(),
		Network:    st,
		Vehicles:   vehicles,
		Incomplete: incomplete,
	}, nil
}

func (w *world) spawn(a traffic.Arrival) {
	m := w.x.Movement(a.Movement)
	if m == nil {
		panic(fmt.Sprintf("sim: arrival %d references unknown movement %v", a.ID, a.Movement))
	}
	// Gate the spawn on the queue tail: a vehicle cannot materialize at
	// speed right behind a standing queue — upstream it would have slowed
	// or stopped. Cap the entry speed at the safe-approach envelope and
	// defer entirely when the queue reaches back to the transmission line.
	speed := a.Speed
	if tail := w.queueTail(a.Movement); tail != nil {
		gap := tail.plant.S() - (tail.plant.Params.Length+a.Params.Length)/2 - w.agentCfg.MinGap
		if gap < 0.05 {
			w.sim.After(0.25, func() { w.spawn(a) })
			return
		}
		vSafe := vehicle.SafeFollowSpeed(gap, tail.plant.V(), tail.plant.Params.MaxDecel,
			a.Params.MaxDecel, w.agentCfg.HeadwayTau)
		speed = math.Min(speed, vSafe)
	}
	w.spawned++
	if w.cfg.Trace != nil {
		w.cfg.Trace.Emit(trace.Event{
			Kind: trace.KindSimSpawn, T: w.sim.Now(), Vehicle: a.ID,
			Detail: a.Movement.String(), Value: speed,
		})
	}
	pl, err := plant.New(m.Path, a.Params, 0, speed, w.cfg.Noise, w.rngPlant)
	if err != nil {
		panic(fmt.Sprintf("sim: plant for %d: %v", a.ID, err))
	}
	clk := timesync.NewSyncedClock(
		timesync.NewRandomClock(w.rngClock, w.cfg.ClockMaxOffset, w.cfg.ClockMaxDriftPPM), 8)

	vs := &vehState{arr: a, plant: pl, movement: m}
	agent, err := vehicle.New(a.ID, m, pl, clk, w.agentCfg, w.sim, w.net, w.leaderFor(vs))
	if err != nil {
		panic(fmt.Sprintf("sim: agent for %d: %v", a.ID, err))
	}
	vs.agent = agent

	rec := w.col.Vehicle(a.ID)
	rec.Movement = a.Movement.String()
	// Wait time is measured from the *intended* transmission-line arrival,
	// so time spent queuing behind a backed-up lane counts as delay.
	rec.SpawnTime = a.Time
	exitDist := m.ExitS + a.Params.Length/2
	eta, _, _ := kinematics.EarliestArrival(0, exitDist, a.Speed, a.Params)
	rec.FreeFlowTime = eta
	vs.rec = rec

	w.active = append(w.active, vs)
	agent.Start()
}

// queueTail returns the rearmost active vehicle on the arrival's entry lane
// that is still on the approach, or nil.
func (w *world) queueTail(mv intersection.MovementID) *vehState {
	var tail *vehState
	minS := math.Inf(1)
	for _, v := range w.active {
		if v.gone {
			continue
		}
		if v.movement.ID.Approach == mv.Approach && v.movement.ID.Lane == mv.Lane &&
			v.plant.S() < v.movement.EnterS && v.plant.S() < minS {
			minS = v.plant.S()
			tail = v
		}
	}
	return tail
}

// leaderFor builds the car-following oracle for one vehicle: the nearest
// vehicle ahead in the same corridor (shared approach lane before the box,
// shared exit lane after it, or the identical movement throughout).
func (w *world) leaderFor(self *vehState) vehicle.LeaderFunc {
	return func() (vehicle.LeaderInfo, bool) {
		sSelf := self.plant.S()
		best := vehicle.LeaderInfo{Gap: math.Inf(1)}
		found := false
		for _, o := range w.active {
			if o == self || o.gone {
				continue
			}
			gap, merge, ok := corridorGap(self, o, sSelf)
			if ok && gap < best.Gap {
				best = vehicle.LeaderInfo{
					Gap:   gap,
					Speed: o.plant.V(),
					Decel: o.plant.Params.MaxDecel,
					Merge: merge,
				}
				found = true
			}
		}
		return best, found
	}
}

// corridorGap returns the bumper-to-bumper distance from self to other if
// other is ahead of self in the same driving corridor. Inside the box
// itself the reservation system owns separation: a vehicle must never stop
// there for car-following, or it breaks its own reservation and gridlocks
// the intersection.
func corridorGap(self, other *vehState, sSelf float64) (gap float64, merge, ok bool) {
	sm, om := self.movement, other.movement
	halfSum := (self.plant.Params.Length + other.plant.Params.Length) / 2
	sOther := other.plant.S()

	if sSelf < sm.EnterS {
		// On the approach: follow anything ahead on the same entry lane
		// that has not yet cleared the box (its in-box arc length is a
		// close proxy for corridor distance near the entry).
		sameEntry := sm.ID.Approach == om.ID.Approach && sm.ID.Lane == om.ID.Lane
		if sameEntry && sOther > sSelf && sOther < om.ExitS {
			return sOther - sSelf - halfSum, false, true
		}
		return 0, false, false
	}
	if sSelf >= sm.ExitS {
		// Past the box: follow along the shared exit lane.
		sameExit := sm.Exit == om.Exit && sm.ID.Lane == om.ID.Lane
		if sameExit {
			rs := sSelf - sm.ExitS
			ro := sOther - om.ExitS
			if ro > rs && sOther >= om.ExitS {
				return ro - rs - halfSum, true, true
			}
		}
		return 0, false, false
	}
	// Inside the box: cross-traffic separation is the reservation
	// system's job, but a vehicle already *past* the box on our exit lane
	// is a physical obstacle we must not catch — and since done vehicles
	// accelerate away, yielding to them cannot stall us in the box.
	sameExit := sm.Exit == om.Exit && sm.ID.Lane == om.ID.Lane
	if sameExit && sOther >= om.ExitS {
		rs := sSelf - sm.ExitS
		ro := sOther - om.ExitS
		if ro > rs {
			return ro - rs - halfSum, true, true
		}
	}
	return 0, false, false
}

func (w *world) step(dt float64) {
	now := w.sim.Now()
	// Control + physics.
	for _, v := range w.active {
		if v.gone {
			continue
		}
		vCmd := v.agent.ControlStep(now, dt)
		v.plant.Step(vCmd, dt)
	}
	// Lifecycle transitions.
	kept := w.active[:0]
	for _, v := range w.active {
		s := v.plant.S()
		if !v.entered && s >= v.movement.EnterS {
			v.entered = true
			v.rec.EnterTime = now
		}
		if !v.done && s >= v.movement.ExitS+v.plant.Params.Length/2 {
			v.done = true
			v.rec.ExitTime = now
			v.rec.Done = true
			v.rec.Retries = v.agent.Retries
			if w.cfg.Trace != nil {
				w.cfg.Trace.Emit(trace.Event{
					Kind: trace.KindSimExit, T: now, Vehicle: v.arr.ID,
					Detail: v.movement.ID.String(),
				})
			}
			v.agent.NotifyExit()
		}
		if s >= v.movement.Length-1e-6 {
			v.gone = true
			v.rec.Retries = v.agent.Retries
			v.agent.Stop()
			continue
		}
		kept = append(kept, v)
	}
	w.active = kept

	w.tick++
	if w.tick%w.cfg.CollisionEvery == 0 {
		w.checkCollisions()
	}
	if w.cfg.Observer != nil {
		every := w.cfg.ObserverEvery
		if every <= 0 {
			every = 10
		}
		if w.tick%every == 0 {
			w.views = w.views[:0]
			for _, v := range w.active {
				w.views = append(w.views, VehicleView{
					ID:       v.arr.ID,
					Pose:     v.plant.Pose(),
					Speed:    v.plant.V(),
					State:    v.agent.State().String(),
					Movement: v.movement.ID,
				})
			}
			w.cfg.Observer(now, w.views)
		}
	}
}

// checkCollisions counts physical body overlaps (anywhere) and planning-
// buffer overlaps between cross traffic near the box — the safety contract
// the IM policies must uphold.
func (w *world) checkCollisions() {
	box := w.x.Box().Expand(w.buffers.Long + 0.5)
	for i := 0; i < len(w.active); i++ {
		vi := w.active[i]
		fi := vi.plant.Footprint()
		bi := fi.Inflate(w.buffers.Long, w.buffers.Lat)
		for j := i + 1; j < len(w.active); j++ {
			vj := w.active[j]
			key := [2]int64{vi.arr.ID, vj.arr.ID}
			fj := vj.plant.Footprint()

			phys := fi.Intersects(fj)
			if phys && !w.overlapping[key] {
				w.col.Collisions++
				if w.cfg.Trace != nil {
					w.cfg.Trace.Emit(trace.Event{
						Kind: trace.KindSimCollision, T: w.sim.Now(),
						Vehicle: vi.arr.ID, Other: vj.arr.ID,
					})
				}
				if w.debug {
					fmt.Printf("[%.2f] collision veh%d(%v s=%.2f v=%.2f st=%v) x veh%d(%v s=%.2f v=%.2f st=%v)\n",
						w.sim.Now(),
						vi.arr.ID, vi.movement.ID, vi.plant.S(), vi.plant.V(), vi.agent.State(),
						vj.arr.ID, vj.movement.ID, vj.plant.S(), vj.plant.V(), vj.agent.State())
					pi, pj := vi.plant.Pose(), vj.plant.Pose()
					fmt.Printf("    pos(veh%d)=(%.2f,%.2f h=%.2f) pos(veh%d)=(%.2f,%.2f h=%.2f)\n",
						vi.arr.ID, pi.Pos.X, pi.Pos.Y, pi.Heading, vj.arr.ID, pj.Pos.X, pj.Pos.Y, pj.Heading)
				}
			}
			w.overlapping[key] = phys

			// Buffer contract: only cross-approach pairs near the box are
			// the IM's responsibility (same-lane spacing is car following).
			if vi.movement.ID.Approach != vj.movement.ID.Approach &&
				box.Overlaps(fi.AABB()) && box.Overlaps(fj.AABB()) {
				bj := fj.Inflate(w.buffers.Long, w.buffers.Lat)
				buf := bi.Intersects(bj)
				if buf && !w.bufOverlap[key] {
					w.col.BufferViolations++
					if w.cfg.Trace != nil {
						w.cfg.Trace.Emit(trace.Event{
							Kind: trace.KindSimBufViol, T: w.sim.Now(),
							Vehicle: vi.arr.ID, Other: vj.arr.ID,
						})
					}
					if w.debug {
						fmt.Printf("[%.2f] bufviol veh%d(%v s=%.2f v=%.2f st=%v) x veh%d(%v s=%.2f v=%.2f st=%v)\n",
							w.sim.Now(),
							vi.arr.ID, vi.movement.ID, vi.plant.S(), vi.plant.V(), vi.agent.State(),
							vj.arr.ID, vj.movement.ID, vj.plant.S(), vj.plant.V(), vj.agent.State())
					}
				}
				w.bufOverlap[key] = buf
			}
		}
	}
}
