package sim

import (
	"fmt"
	"math/rand"
	"os"
	"testing"

	"crossroads/internal/intersection"
	"crossroads/internal/kinematics"
	"crossroads/internal/safety"
	"crossroads/internal/traffic"
	"crossroads/internal/vehicle"
)

// TestShapeSweep is a manual diagnostic printing the Fig. 7.2 curve shape.
// Run with CROSSROADS_SHAPE=1.
func TestShapeSweep(t *testing.T) {
	if os.Getenv("CROSSROADS_SHAPE") == "" {
		t.Skip("set CROSSROADS_SHAPE=1 to run")
	}
	rates := []float64{0.05, 0.2, 0.4, 0.6, 0.9, 1.25}
	fmt.Printf("%-6s %-12s %-12s %-12s\n", "rate", "vt-im", "aim", "crossroads")
	for _, rate := range rates {
		var tp [3]float64
		var extra [3]string
		for i, pol := range []vehicle.Policy{vehicle.PolicyVTIM, vehicle.PolicyAIM, vehicle.PolicyCrossroads} {
			arr, err := traffic.Poisson(traffic.PoissonConfig{
				Rate: rate, NumVehicles: 160, LanesPerRoad: 1,
				Mix: traffic.DefaultTurnMix(), Params: kinematics.FullScaleParams(),
			}, rand.New(rand.NewSource(42)))
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(Config{
				Policy:       pol,
				Seed:         42,
				Intersection: intersection.FullScaleConfig(),
				Spec:         safety.FullScaleSpec(),
			}, arr)
			if err != nil {
				t.Fatal(err)
			}
			tp[i] = res.Summary.Throughput
			extra[i] = fmt.Sprintf("%.4f(c%d,i%d,m%d)", res.Summary.Throughput,
				res.Summary.Collisions, res.Incomplete, res.Summary.Messages)
		}
		fmt.Printf("%-6.2f %-22s %-22s %-22s\n", rate, extra[0], extra[1], extra[2])
	}
}
