package metrics

import (
	"encoding/json"
	"fmt"
	"os"
)

// BenchMetric is one measured quantity from a benchmark run.
type BenchMetric struct {
	// Name identifies the benchmark (e.g. "BookEarliestFeasible") or a
	// sub-case ("SweepParallel/workers=4").
	Name string `json:"name"`
	// NsPerOp is the measured wall time per operation in nanoseconds.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp and BytesPerOp carry the allocation profile when the
	// benchmark reports memory (zero otherwise).
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	// N is how many iterations the harness settled on.
	N int `json:"n"`
	// Extra holds custom b.ReportMetric-style values keyed by unit.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// BenchReport is the machine-readable benchmark artifact (BENCH_*.json)
// committed alongside the code so performance changes are reviewable.
type BenchReport struct {
	// Label names the change being measured (e.g. "parallel-engine+book-cache").
	Label string `json:"label"`
	// GoOS/GoArch/NumCPU record the environment the numbers came from —
	// speedup claims are meaningless without the core count.
	GoOS    string        `json:"goos"`
	GoArch  string        `json:"goarch"`
	NumCPU  int           `json:"num_cpu"`
	Metrics []BenchMetric `json:"metrics"`
	// Notes records measurement caveats (e.g. the parallel variant being
	// skipped on a single-core machine, where it would duplicate the
	// serial measurement).
	Notes []string `json:"notes,omitempty"`
}

// Speedup returns metric a's ns/op divided by metric b's — how many times
// faster b is than a. It errors if either name is missing or b is zero.
func (r BenchReport) Speedup(a, b string) (float64, error) {
	find := func(name string) (BenchMetric, error) {
		for _, m := range r.Metrics {
			if m.Name == name {
				return m, nil
			}
		}
		return BenchMetric{}, fmt.Errorf("metrics: no benchmark %q in report", name)
	}
	ma, err := find(a)
	if err != nil {
		return 0, err
	}
	mb, err := find(b)
	if err != nil {
		return 0, err
	}
	if mb.NsPerOp == 0 {
		return 0, fmt.Errorf("metrics: benchmark %q has zero ns/op", b)
	}
	return ma.NsPerOp / mb.NsPerOp, nil
}

// WriteFile serializes the report as indented JSON, newline-terminated.
// Duplicate metric names are rejected: Speedup resolves metrics by name,
// so a report with two entries under one name is ambiguous (the bug a
// single-core machine used to trigger by measuring workers=1 twice).
func (r BenchReport) WriteFile(path string) error {
	seen := make(map[string]bool, len(r.Metrics))
	for _, m := range r.Metrics {
		if seen[m.Name] {
			return fmt.Errorf("metrics: duplicate benchmark name %q in report", m.Name)
		}
		seen[m.Name] = true
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadBenchReport loads a report written by WriteFile.
func ReadBenchReport(path string) (BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return BenchReport{}, err
	}
	var r BenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return BenchReport{}, fmt.Errorf("metrics: parsing %s: %w", path, err)
	}
	return r, nil
}
