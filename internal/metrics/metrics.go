// Package metrics collects and aggregates the evaluation quantities the
// paper reports: per-vehicle wait time (actual travel time minus free-flow
// travel time), intersection throughput — defined in §7.2 as the number of
// managed vehicles divided by total wait time — plus message, byte, and
// computation accounting for the overhead comparison.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// VehicleRecord accumulates the lifecycle timestamps of one vehicle.
type VehicleRecord struct {
	ID       int64
	Movement string
	// SpawnTime is when the vehicle crossed the transmission line.
	SpawnTime float64
	// EnterTime is when it entered the intersection box.
	EnterTime float64
	// ExitTime is when it cleared the box (the paper's exit timestamp).
	ExitTime float64
	// FreeFlowTime is how long the spawn-to-exit trip would take with no
	// other traffic (vehicle free to run its earliest-arrival profile).
	FreeFlowTime float64
	// Done marks a completed crossing.
	Done bool
	// Retries counts protocol re-requests (AIM's reject loop).
	Retries int
}

// WaitTime returns the vehicle's delay versus free flow. Incomplete
// vehicles report NaN.
func (r VehicleRecord) WaitTime() float64 {
	if !r.Done {
		return math.NaN()
	}
	w := (r.ExitTime - r.SpawnTime) - r.FreeFlowTime
	if w < 0 {
		return 0 // clock noise can produce tiny negative residuals
	}
	return w
}

// TravelTime returns the total transmission-line-to-exit time (the paper's
// per-vehicle "wait" accounting via the exit timestamp). Incomplete
// vehicles report NaN.
func (r VehicleRecord) TravelTime() float64 {
	if !r.Done {
		return math.NaN()
	}
	return r.ExitTime - r.SpawnTime
}

// Collector accumulates vehicle records and run-level counters.
type Collector struct {
	vehicles map[int64]*VehicleRecord
	order    []int64

	// Messages and Bytes mirror the network totals for this run.
	Messages int
	Bytes    int
	// SchedulerInvocations counts IM scheduling calls; SchedulerWall is
	// their accumulated wall-clock cost; SchedulerSimDelay is the summed
	// *simulated* computation delay the IM imposed on replies.
	SchedulerInvocations int
	SchedulerWall        time.Duration
	SchedulerSimDelay    float64
	// Collisions counts physical body-overlap events observed by the
	// safety checker (must be zero for any policy).
	Collisions int
	// BufferViolations counts overlaps of the buffer-inflated planning
	// footprints inside the box — the safety contract the paper's buffers
	// exist to uphold. Nonzero values appear only in the unsafe ablation
	// (VT-IM without the RTD buffer).
	BufferViolations int
	// Revisions counts IM-initiated grant revisions pushed to vehicles.
	Revisions int
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{vehicles: make(map[int64]*VehicleRecord)}
}

// Vehicle returns (creating if needed) the record for id.
func (c *Collector) Vehicle(id int64) *VehicleRecord {
	if r, ok := c.vehicles[id]; ok {
		return r
	}
	r := &VehicleRecord{ID: id}
	c.vehicles[id] = r
	c.order = append(c.order, id)
	return r
}

// Records returns all records in creation order.
func (c *Collector) Records() []*VehicleRecord {
	out := make([]*VehicleRecord, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, c.vehicles[id])
	}
	return out
}

// Completed returns the number of vehicles that finished crossing.
func (c *Collector) Completed() int {
	n := 0
	for _, r := range c.vehicles {
		if r.Done {
			n++
		}
	}
	return n
}

// AbsorbCounters folds another collector's run-level counters into this
// one, leaving vehicle records untouched. Multi-node worlds keep one
// collector per intersection for per-node scheduler accounting plus a
// journey collector for end-to-end vehicle records; this merges the node
// counters into the journey view. (Messages and Bytes are network-global
// and set once on the journey collector, so they are deliberately not
// summed here.)
func (c *Collector) AbsorbCounters(o *Collector) {
	if o == nil {
		return
	}
	c.SchedulerInvocations += o.SchedulerInvocations
	c.SchedulerWall += o.SchedulerWall
	c.SchedulerSimDelay += o.SchedulerSimDelay
	c.Collisions += o.Collisions
	c.BufferViolations += o.BufferViolations
	c.Revisions += o.Revisions
}

// Summary is the aggregate view of one run.
type Summary struct {
	Vehicles  int
	Completed int
	MeanWait  float64
	MaxWait   float64
	P95Wait   float64
	TotalWait float64
	// MeanTravel and TotalTravel cover the full line-to-exit times.
	MeanTravel  float64
	TotalTravel float64
	// Throughput is Completed / TotalTravel — the paper's "number of
	// managed vehicles divided by total wait time", where each vehicle's
	// wait is measured from the transmission line to its exit timestamp.
	Throughput float64
	// DelayThroughput is Completed / TotalWait (excess delay only),
	// reported alongside for sensitivity.
	DelayThroughput      float64
	MakeSpan             float64 // last exit time minus first spawn time
	Messages             int
	Bytes                int
	MeanRetries          float64
	SchedulerInvocations int
	SchedulerWall        time.Duration
	SchedulerSimDelay    float64
	Collisions           int
	BufferViolations     int
	Revisions            int
}

// Summarize computes the aggregate statistics over completed vehicles.
func (c *Collector) Summarize() Summary {
	s := Summary{
		Vehicles:             len(c.vehicles),
		Messages:             c.Messages,
		Bytes:                c.Bytes,
		SchedulerInvocations: c.SchedulerInvocations,
		SchedulerWall:        c.SchedulerWall,
		SchedulerSimDelay:    c.SchedulerSimDelay,
		Collisions:           c.Collisions,
		BufferViolations:     c.BufferViolations,
		Revisions:            c.Revisions,
	}
	var waits []float64
	firstSpawn := math.Inf(1)
	lastExit := math.Inf(-1)
	totalRetries := 0
	for _, id := range c.order {
		r := c.vehicles[id]
		totalRetries += r.Retries
		if !r.Done {
			continue
		}
		s.Completed++
		w := r.WaitTime()
		waits = append(waits, w)
		s.TotalWait += w
		s.TotalTravel += r.TravelTime()
		if w > s.MaxWait {
			s.MaxWait = w
		}
		if r.SpawnTime < firstSpawn {
			firstSpawn = r.SpawnTime
		}
		if r.ExitTime > lastExit {
			lastExit = r.ExitTime
		}
	}
	if s.Completed > 0 {
		s.MeanWait = s.TotalWait / float64(s.Completed)
		s.MeanTravel = s.TotalTravel / float64(s.Completed)
		s.P95Wait = Percentile(waits, 0.95)
		s.MakeSpan = lastExit - firstSpawn
		if s.TotalTravel > 0 {
			s.Throughput = float64(s.Completed) / s.TotalTravel
		}
		if s.TotalWait > 0 {
			s.DelayThroughput = float64(s.Completed) / s.TotalWait
		} else {
			s.DelayThroughput = math.Inf(1)
		}
	}
	if s.Vehicles > 0 {
		s.MeanRetries = float64(totalRetries) / float64(s.Vehicles)
	}
	return s
}

// Percentile returns the p-quantile (0..1) of xs by linear interpolation.
// It returns NaN for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean, or NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Table renders rows as an aligned text table with a header row, for the
// experiment binaries' output.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table { return &Table{headers: headers} }

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.headers, ","))
	b.WriteString("\n")
	for _, row := range t.rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteString("\n")
	}
	return b.String()
}
