package metrics

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestBenchReportRoundTrip(t *testing.T) {
	rep := BenchReport{
		Label:  "test",
		GoOS:   "linux",
		GoArch: "amd64",
		NumCPU: 4,
		Metrics: []BenchMetric{
			{Name: "A", NsPerOp: 200, AllocsPerOp: 10, BytesPerOp: 512, N: 100},
			{Name: "B", NsPerOp: 50, N: 400, Extra: map[string]float64{"tput": 1.5}},
		},
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBenchReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, got) {
		t.Errorf("round trip mismatch:\nwrote %+v\nread  %+v", rep, got)
	}
}

func TestBenchReportRejectsDuplicateNames(t *testing.T) {
	// Two metrics under one name make Speedup ambiguous — exactly what a
	// single-core benchreport run used to produce by measuring the
	// "parallel" sweep at workers=1 alongside the serial one.
	rep := BenchReport{
		Label: "dup",
		Metrics: []BenchMetric{
			{Name: "SweepParallel/workers=1", NsPerOp: 100, N: 1},
			{Name: "SweepParallel/workers=1", NsPerOp: 101, N: 1},
		},
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := rep.WriteFile(path); err == nil {
		t.Fatal("WriteFile accepted duplicate metric names")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("rejected report still wrote a file (stat err: %v)", err)
	}
}

func TestBenchReportSpeedup(t *testing.T) {
	rep := BenchReport{Metrics: []BenchMetric{
		{Name: "serial", NsPerOp: 400},
		{Name: "parallel", NsPerOp: 100},
	}}
	sp, err := rep.Speedup("serial", "parallel")
	if err != nil {
		t.Fatal(err)
	}
	if sp != 4 {
		t.Errorf("speedup = %v, want 4", sp)
	}
	if _, err := rep.Speedup("missing", "parallel"); err == nil {
		t.Error("missing numerator accepted")
	}
	if _, err := rep.Speedup("serial", "missing"); err == nil {
		t.Error("missing denominator accepted")
	}
	rep.Metrics[1].NsPerOp = 0
	if _, err := rep.Speedup("serial", "parallel"); err == nil {
		t.Error("zero denominator accepted")
	}
}

func TestReadBenchReportErrors(t *testing.T) {
	if _, err := ReadBenchReport(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing file accepted")
	}
	path := filepath.Join(t.TempDir(), "garbage.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBenchReport(path); err == nil {
		t.Error("corrupt file accepted")
	}
}
