package metrics

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestVehicleRecordWaitTime(t *testing.T) {
	r := VehicleRecord{SpawnTime: 10, ExitTime: 15, FreeFlowTime: 3, Done: true}
	if got := r.WaitTime(); got != 2 {
		t.Errorf("WaitTime = %v, want 2", got)
	}
	// Not done: NaN.
	r.Done = false
	if !math.IsNaN(r.WaitTime()) {
		t.Error("incomplete vehicle should report NaN")
	}
	// Tiny negative residual clamps to 0.
	r2 := VehicleRecord{SpawnTime: 0, ExitTime: 2.999, FreeFlowTime: 3, Done: true}
	if got := r2.WaitTime(); got != 0 {
		t.Errorf("negative residual = %v, want 0", got)
	}
}

func TestCollectorVehicleIdentity(t *testing.T) {
	c := NewCollector()
	r1 := c.Vehicle(5)
	r2 := c.Vehicle(5)
	if r1 != r2 {
		t.Error("Vehicle(5) returned different records")
	}
	if len(c.Records()) != 1 {
		t.Errorf("Records = %d", len(c.Records()))
	}
}

func TestSummarize(t *testing.T) {
	c := NewCollector()
	for i := int64(1); i <= 4; i++ {
		r := c.Vehicle(i)
		r.SpawnTime = float64(i)
		r.ExitTime = float64(i) + 3 + float64(i) // wait time = i
		r.FreeFlowTime = 3
		r.Done = true
	}
	// One incomplete vehicle.
	c.Vehicle(5).SpawnTime = 9
	c.Messages = 42
	c.Bytes = 1024
	c.SchedulerInvocations = 7
	c.SchedulerWall = time.Millisecond
	c.SchedulerSimDelay = 0.5
	c.Collisions = 0

	s := c.Summarize()
	if s.Vehicles != 5 || s.Completed != 4 {
		t.Errorf("Vehicles=%d Completed=%d", s.Vehicles, s.Completed)
	}
	if s.TotalWait != 1+2+3+4 {
		t.Errorf("TotalWait = %v", s.TotalWait)
	}
	if s.MeanWait != 2.5 {
		t.Errorf("MeanWait = %v", s.MeanWait)
	}
	if s.MaxWait != 4 {
		t.Errorf("MaxWait = %v", s.MaxWait)
	}
	if math.Abs(s.DelayThroughput-4.0/10.0) > 1e-12 {
		t.Errorf("DelayThroughput = %v, want 0.4", s.DelayThroughput)
	}
	// Travel times: (3+i) seconds each => 4+5+6+7 = 22.
	if s.TotalTravel != 22 {
		t.Errorf("TotalTravel = %v, want 22", s.TotalTravel)
	}
	if math.Abs(s.Throughput-4.0/22.0) > 1e-12 {
		t.Errorf("Throughput = %v, want 4/22", s.Throughput)
	}
	if s.MeanTravel != 5.5 {
		t.Errorf("MeanTravel = %v, want 5.5", s.MeanTravel)
	}
	// MakeSpan: first spawn 1, last exit 4+3+4=11.
	if s.MakeSpan != 10 {
		t.Errorf("MakeSpan = %v", s.MakeSpan)
	}
	if s.Messages != 42 || s.Bytes != 1024 || s.SchedulerInvocations != 7 {
		t.Error("counters not carried through")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := NewCollector().Summarize()
	if s.Completed != 0 || s.Throughput != 0 || s.MeanWait != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestSummarizeZeroWaitInfiniteThroughput(t *testing.T) {
	c := NewCollector()
	r := c.Vehicle(1)
	r.SpawnTime = 0
	r.ExitTime = 3
	r.FreeFlowTime = 3
	r.Done = true
	s := c.Summarize()
	if !math.IsInf(s.DelayThroughput, 1) {
		t.Errorf("DelayThroughput = %v, want +Inf for zero wait", s.DelayThroughput)
	}
	// Travel-based throughput stays finite: 1 vehicle / 3 s of travel.
	if math.Abs(s.Throughput-1.0/3.0) > 1e-12 {
		t.Errorf("Throughput = %v, want 1/3", s.Throughput)
	}
}

func TestMeanRetries(t *testing.T) {
	c := NewCollector()
	c.Vehicle(1).Retries = 4
	c.Vehicle(2).Retries = 0
	s := c.Summarize()
	if s.MeanRetries != 2 {
		t.Errorf("MeanRetries = %v", s.MeanRetries)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2, 5}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := Percentile(xs, 1); got != 5 {
		t.Errorf("p100 = %v", got)
	}
	if got := Percentile(xs, 0.5); got != 3 {
		t.Errorf("p50 = %v", got)
	}
	if got := Percentile(xs, 0.25); got != 2 {
		t.Errorf("p25 = %v", got)
	}
	// Interpolated.
	if got := Percentile([]float64{0, 10}, 0.75); got != 7.5 {
		t.Errorf("interpolated p75 = %v", got)
	}
	if !math.IsNaN(Percentile(nil, 0.5)) {
		t.Error("empty percentile not NaN")
	}
	// Input must not be mutated.
	orig := []float64{3, 1, 2}
	Percentile(orig, 0.5)
	if orig[0] != 3 || orig[1] != 1 {
		t.Error("Percentile mutated input")
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("empty mean not NaN")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("policy", "throughput")
	tb.AddRow("crossroads", 0.123456)
	tb.AddRow("vt-im", 0.07)
	out := tb.String()
	if !strings.Contains(out, "policy") || !strings.Contains(out, "crossroads") {
		t.Errorf("table missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header, separator, 2 rows
		t.Errorf("table has %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("missing separator: %q", lines[1])
	}
	// Float formatting: %.4g.
	if !strings.Contains(out, "0.1235") {
		t.Errorf("float not formatted: %s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow(1, 2.5)
	csv := tb.CSV()
	want := "a,b\n1,2.5\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
}
