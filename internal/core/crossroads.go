// Package core implements Crossroads, the paper's time-sensitive
// intersection-management technique (Chapter 6, Algorithms 7-8).
//
// A Crossroads request carries the vehicle's transmit timestamp TT
// (captured on its NTP-synchronized clock), its distance to the
// intersection DT, and its current velocity VC. The IM fixes the command
// execution time
//
//	TE = TT + WC-RTD
//
// and plans the vehicle's trajectory *from TE*, at which point the vehicle
// — having held VC since transmitting — is deterministically at distance
//
//	DE = DT - VC*(TE - TT)
//
// from the box entry, regardless of how long the round trip actually took.
// The IM then computes the earliest conflict-free arrival time ToA >= the
// earliest reachable arrival
//
//	EToA = TE + TAcc + (DE - DeltaX)/Vmax,
//	TAcc = (Vmax - Vinit)/amax,  DeltaX = 0.5*amax*TAcc^2 + Vinit*TAcc
//
// and replies (TE, ToA, VT). Because the position at TE is deterministic,
// no round-trip-delay buffer is needed — only the sensing and clock-sync
// buffer (78 mm on the testbed instead of VT-IM's 528 mm).
package core

import (
	"fmt"
	"math"
	"math/rand"

	"crossroads/internal/im"
	"crossroads/internal/intersection"
	"crossroads/internal/kinematics"
	"crossroads/internal/safety"
)

// PolicyName is the scheduler name reported in results.
const PolicyName = "crossroads"

// Config parameterizes the Crossroads scheduler.
type Config struct {
	// Spec supplies the uncertainty bounds; Crossroads buffers sensing +
	// sync only.
	Spec safety.Spec
	// Cost models IM computation delay.
	Cost im.CostModel
	// Margin is extra temporal clearance between occupancies (s).
	Margin float64
	// MinCrossSpeed floors the granted crossing speed so occupancy windows
	// stay finite (m/s).
	MinCrossSpeed float64
	// RefLength and RefWidth are the reference vehicle body dimensions.
	RefLength, RefWidth float64
	// TableStep is the conflict-table sampling resolution (m).
	TableStep float64
}

// DefaultConfig returns the testbed configuration of the paper.
func DefaultConfig() Config {
	return Config{
		Spec:          safety.TestbedSpec(),
		Cost:          im.TestbedCostModel(),
		Margin:        0.05,
		MinCrossSpeed: 0.1,
		RefLength:     0.568,
		RefWidth:      0.296,
	}
}

// planner implements im.VTPlanner with the time-sensitive anchoring.
type planner struct {
	wcRTD    float64
	minSpeed float64
	// lipDist is how far before the box entry (center-to-entry) a plan
	// may dwell or crawl: closer, and the waiting vehicle's nose would
	// park inside crossing movements' conflict zones, which the book's
	// pre-entry occupancy model cannot represent.
	lipDist float64
}

// LatestArrival implements im.ArrivalBounder: the latest arrival the
// vehicle can *safely* realize from the request's state. +Inf when it can
// still stop behind the conflict-zone lip (it can wait forever at the stop
// line). Past the lip's stopping point there is no safe waiting position —
// a stop-and-dwell plan would park the nose inside crossing movements'
// conflict zones — so the bound is the deepest no-dwell dip, floored at
// the minimum crossing speed.
func (p planner) LatestArrival(now float64, req im.Request) float64 {
	vc := math.Min(math.Max(req.CurrentSpeed, 0), req.Params.MaxSpeed)
	te := req.TransmitTime + p.wcRTD
	de := math.Max(req.DistToEntry-vc*(te-req.TransmitTime), 0)
	if req.Params.StoppingDistance(vc) < de-p.lipDist {
		// Can still wait behind the conflict-zone lip: any later arrival
		// is reachable.
		return math.Inf(1)
	}
	eta, ok := kinematics.LatestNoDwell(de, vc, p.minSpeed, req.Params)
	if !ok {
		return te
	}
	return te + eta
}

// VerifySlot implements im.SlotVerifier: reject slots whose approach plan
// dwells (or crawls below 0.3 m/s) within the lip of the box — the vehicle
// must instead stop at the stop line (behind the lip) and retry.
func (p planner) VerifySlot(now, toa float64, plan im.CrossingPlan, req im.Request) bool {
	vc := math.Min(math.Max(req.CurrentSpeed, 0), req.Params.MaxSpeed)
	te := req.TransmitTime + p.wcRTD
	de := math.Max(req.DistToEntry-vc*(te-req.TransmitTime), 0)
	prof, err := kinematics.PlanArrival(te, de, vc, toa, req.Params)
	if err != nil {
		return true // earliest-arrival grants never dwell
	}
	if math.Abs(prof.TimeAtDistance(de)-toa) > 0.05 {
		// The found slot is later than the deepest dip can reach from the
		// execution state: unreachable, so command a stop instead.
		return false
	}
	minV, remaining := kinematics.SlowestPoint(prof, de)
	if minV >= 0.3 {
		return true
	}
	if remaining >= de-1e-6 {
		// The slow point is the plan's start — the vehicle already stands
		// there; only *future* dwells inside the lip are rejectable.
		return true
	}
	return remaining >= p.lipDist-1e-6
}

// Plan implements Algorithm 7's calculateActuationTime and
// calculateTargetArrivalTime. Granted vehicles arrive at ToA at the plan's
// entry speed and then accelerate to top speed through the box — the
// max-acceleration crossing of the paper's Fig. 6.2.
func (p planner) Plan(now float64, req im.Request) (float64, func(float64) im.CrossingPlan, func(float64, im.CrossingPlan) im.Response, error) {
	if err := req.Params.Validate(); err != nil {
		return 0, nil, nil, err
	}
	vc := math.Min(math.Max(req.CurrentSpeed, 0), req.Params.MaxSpeed)
	te := req.TransmitTime + p.wcRTD
	de := req.DistToEntry - vc*(te-req.TransmitTime)
	if de < 0 {
		de = 0
	}
	etaDelay, vEarliest, _ := kinematics.EarliestArrival(te, de, vc, req.Params)
	earliest := te + etaDelay
	if vEarliest < p.minSpeed {
		vEarliest = p.minSpeed
	}
	planFor := func(toa float64) im.CrossingPlan {
		vArr := vEarliest
		prof, err := kinematics.PlanArrival(te, de, vc, toa, req.Params)
		if err != nil {
			_, _, prof = kinematics.EarliestArrival(te, de, vc, req.Params)
		} else if toa > earliest+1e-6 {
			vArr = prof.VelocityAt(prof.TimeAtDistance(de))
			if vArr < p.minSpeed {
				vArr = p.minSpeed
			}
		}
		plan := im.AccelPlan(toa, vArr, req.Params.MaxSpeed, req.Params.MaxAccel)
		// Record the commanded approach so the IM can revise this grant
		// later if a committed vehicle invalidates it.
		plan.Approach = prof
		plan.ApproachDist = de
		return plan
	}
	respond := func(toa float64, plan im.CrossingPlan) im.Response {
		return im.Response{
			Kind:        im.RespTimed,
			TargetSpeed: plan.EntrySpeed,
			ExecuteAt:   te,
			ArriveAt:    toa,
		}
	}
	return earliest, planFor, respond, nil
}

// Planner builds the Crossroads time-sensitive planner from the config.
// Derived policies (signalized, auction) wrap it to reuse the exact TE/DE
// anchoring; the returned planner also implements im.SlotVerifier and
// im.ArrivalBounder.
func (cfg Config) Planner() (im.VTPlanner, error) {
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	if cfg.MinCrossSpeed <= 0 {
		return nil, fmt.Errorf("core: MinCrossSpeed %v must be positive", cfg.MinCrossSpeed)
	}
	lip := cfg.RefWidth/2 + 2*cfg.Spec.SensingBuffer() + 0.05 + cfg.RefLength/2
	return planner{wcRTD: cfg.Spec.WorstRTD, minSpeed: cfg.MinCrossSpeed, lipDist: lip}, nil
}

// VTConfig returns the shared-scheduler configuration Crossroads runs with,
// for policies that reuse its book, buffers, and margins.
func (cfg Config) VTConfig() im.VTCoreConfig {
	return im.VTCoreConfig{
		Buffers:       cfg.Spec.ForCrossroads(),
		Margin:        cfg.Margin,
		SpatialMargin: 2 * cfg.Spec.SensingBuffer(),
		Cost:          cfg.Cost,
		TableStep:     cfg.TableStep,
		RefLength:     cfg.RefLength,
		RefWidth:      cfg.RefWidth,
	}
}

// New builds the Crossroads scheduler over the intersection.
func New(x *intersection.Intersection, cfg Config, rng *rand.Rand) (*im.VTCore, error) {
	p, err := cfg.Planner()
	if err != nil {
		return nil, err
	}
	return im.NewVTCore(PolicyName, x, p, cfg.VTConfig(), rng)
}
