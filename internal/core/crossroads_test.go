package core

import (
	"math"
	"math/rand"
	"testing"

	"crossroads/internal/im"
	"crossroads/internal/intersection"
	"crossroads/internal/kinematics"
	"crossroads/internal/safety"
)

func newSched(t *testing.T) *im.VTCore {
	t.Helper()
	x, err := intersection.New(intersection.ScaleModelConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Cost.Jitter = 0
	s, err := New(x, cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func req(id int64, seq int, a intersection.Approach, tt, dt, vc float64) im.Request {
	return im.Request{
		VehicleID: id, Seq: seq,
		Movement:     intersection.MovementID{Approach: a, Lane: 0, Turn: intersection.Straight},
		CurrentSpeed: vc, DistToEntry: dt, TransmitTime: tt,
		Params: kinematics.ScaleModelParams(),
	}
}

func TestCrossroadsGrantIsTimed(t *testing.T) {
	s := newSched(t)
	resp, cost := s.HandleRequest(0.05, req(1, 1, intersection.East, 0.04, 3.0, 3.0))
	if resp.Kind != im.RespTimed {
		t.Fatalf("Kind = %v", resp.Kind)
	}
	// TE = TT + WC-RTD.
	wantTE := 0.04 + safety.TestbedSpec().WorstRTD
	if math.Abs(resp.ExecuteAt-wantTE) > 1e-9 {
		t.Errorf("TE = %v, want %v", resp.ExecuteAt, wantTE)
	}
	// Free intersection: ToA equals the earliest arrival from
	// DE = DT - VC*WCRTD at full speed: TE + DE/Vmax.
	de := 3.0 - 3.0*0.15
	wantToA := wantTE + de/3.0
	if math.Abs(resp.ArriveAt-wantToA) > 1e-6 {
		t.Errorf("ToA = %v, want %v", resp.ArriveAt, wantToA)
	}
	if resp.TargetSpeed != 3.0 {
		t.Errorf("VT = %v, want max speed", resp.TargetSpeed)
	}
	if cost <= 0 {
		t.Errorf("cost = %v", cost)
	}
	if s.Name() != PolicyName {
		t.Errorf("Name = %q", s.Name())
	}
}

func TestCrossroadsConflictPushesSecondVehicle(t *testing.T) {
	s := newSched(t)
	r1, _ := s.HandleRequest(0.05, req(1, 1, intersection.East, 0.04, 3.0, 3.0))
	r2, _ := s.HandleRequest(0.08, req(2, 1, intersection.North, 0.07, 3.0, 3.0))
	if r2.Kind != im.RespTimed {
		t.Fatalf("second response = %v", r2.Kind)
	}
	if r2.ArriveAt <= r1.ArriveAt {
		t.Errorf("conflicting ToAs not serialized: %v then %v", r1.ArriveAt, r2.ArriveAt)
	}
	// The pushed vehicle keeps a healthy crossing speed (dips and then
	// re-accelerates rather than crawling).
	if r2.TargetSpeed < 0.5 {
		t.Errorf("pushed VT = %v", r2.TargetSpeed)
	}
}

func TestCrossroadsExitReleasesSlot(t *testing.T) {
	s := newSched(t)
	r1, _ := s.HandleRequest(0.05, req(1, 1, intersection.East, 0.04, 3.0, 3.0))
	s.HandleExit(2.0, 1)
	// A later conflicting request gets the same free-intersection grant
	// shape (relative to its own TE).
	r2, _ := s.HandleRequest(2.05, req(2, 1, intersection.North, 2.04, 3.0, 3.0))
	d1 := r1.ArriveAt - r1.ExecuteAt
	d2 := r2.ArriveAt - r2.ExecuteAt
	if math.Abs(d1-d2) > 1e-6 {
		t.Errorf("post-exit grant delayed: %v vs %v", d2, d1)
	}
}

func TestCrossroadsLaneFIFOBlocksReorderedFollower(t *testing.T) {
	s := newSched(t)
	// The closer vehicle (1) has no booking yet; the farther one (2)
	// requests first and must be told to stop, not granted a slot it
	// cannot reach past vehicle 1.
	r := req(2, 1, intersection.East, 0.04, 3.0, 3.0)
	// Teach the scheduler about vehicle 1 being ahead: its own request
	// fails VerifySlot? Simpler: vehicle 1 requests first, gets a grant,
	// then vehicle 2 farther back must be floored past vehicle 1's ToA.
	r1, _ := s.HandleRequest(0.05, req(1, 1, intersection.East, 0.04, 2.0, 3.0))
	resp, _ := s.HandleRequest(0.06, r)
	if resp.Kind != im.RespTimed {
		t.Fatalf("follower response = %v", resp.Kind)
	}
	if resp.ArriveAt <= r1.ArriveAt {
		t.Errorf("follower ToA %v not after leader %v", resp.ArriveAt, r1.ArriveAt)
	}
}

func TestCrossroadsCommittedRebookClamps(t *testing.T) {
	s := newSched(t)
	// Fill the slot with cross traffic.
	s.HandleRequest(0.05, req(1, 1, intersection.North, 0.04, 3.0, 3.0))
	// A committed east vehicle (cannot stop: 0.8 m out at full speed)
	// reports its true state; the grant must stay within its physics:
	// from 0.8 m at 3 m/s the crossing happens within ~1 s no matter what.
	r := req(2, 1, intersection.East, 0.50, 0.8, 3.0)
	r.Committed = true
	resp, _ := s.HandleRequest(0.52, r)
	if resp.Kind != im.RespTimed {
		t.Fatalf("committed response = %v", resp.Kind)
	}
	te := 0.50 + 0.15
	latest := te + 1.0 // generous bound: deepest dip from 3 m/s over 0.35 m
	if resp.ArriveAt > latest {
		t.Errorf("committed ToA %v beyond physics (latest ~%v)", resp.ArriveAt, latest)
	}
}

func TestCrossroadsStopCommandWhenDwellWouldEnterLip(t *testing.T) {
	s := newSched(t)
	// Occupy the intersection for a long while with slow cross traffic.
	for i := int64(1); i <= 3; i++ {
		s.HandleRequest(0.05+float64(i)*0.01, req(i, 1, intersection.North, 0.04, 3.0, 1.0))
	}
	// A fast vehicle close to the line would have to dwell inside the lip
	// to wait its turn: the IM must command a stop instead.
	resp, _ := s.HandleRequest(0.40, req(9, 1, intersection.East, 0.39, 2.1, 3.0))
	if resp.Kind != im.RespVelocity || resp.TargetSpeed != 0 {
		t.Errorf("expected stop command, got %+v", resp)
	}
	// The stopped vehicle holds a placeholder protecting its turn.
	if _, ok := s.Book().Get(9); !ok {
		t.Error("no placeholder booked for the stopped vehicle")
	}
}

func TestCrossroadsInvalidParams(t *testing.T) {
	s := newSched(t)
	bad := req(1, 1, intersection.East, 0, 3, 3)
	bad.Params = kinematics.Params{}
	resp, _ := s.HandleRequest(0.05, bad)
	if resp.Kind != im.RespVelocity || resp.TargetSpeed != 0 {
		t.Errorf("invalid params: got %+v, want stop", resp)
	}
}

func TestNewValidation(t *testing.T) {
	x, _ := intersection.New(intersection.ScaleModelConfig())
	cfg := DefaultConfig()
	cfg.Spec.MaxSpeed = 0
	if _, err := New(x, cfg, rand.New(rand.NewSource(1))); err == nil {
		t.Error("invalid spec accepted")
	}
	cfg = DefaultConfig()
	cfg.MinCrossSpeed = 0
	if _, err := New(x, cfg, rand.New(rand.NewSource(1))); err == nil {
		t.Error("zero MinCrossSpeed accepted")
	}
}

func TestLatestArrivalNoDwellBound(t *testing.T) {
	p := planner{wcRTD: 0.15, minSpeed: 0.1, lipDist: 0.6}

	// Far out at low speed: the vehicle can still stop behind the lip, so
	// any later arrival is reachable (it waits at the stop line).
	far := req(1, 1, intersection.East, 0, 3.0, 1.0)
	if got := p.LatestArrival(0, far); !math.IsInf(got, 1) {
		t.Errorf("stop-capable latest = %v, want +Inf", got)
	}

	// Close in at full speed: stopping would park the nose inside the lip,
	// so the latest is the finite no-dwell dip bound — NOT the effectively
	// unbounded stop-and-dwell arrival the planner used to report.
	near := req(2, 1, intersection.East, 0, 1.5, 3.0)
	te := near.TransmitTime + p.wcRTD
	de := near.DistToEntry - near.CurrentSpeed*(te-near.TransmitTime)
	if near.Params.StoppingDistance(near.CurrentSpeed) < de-p.lipDist {
		t.Fatal("test setup: vehicle unexpectedly stop-capable")
	}
	got := p.LatestArrival(0, near)
	if math.IsInf(got, 1) {
		t.Fatal("lip-bound vehicle reported unbounded latest arrival")
	}
	eta, ok := kinematics.LatestNoDwell(de, near.CurrentSpeed, p.minSpeed, near.Params)
	if !ok {
		t.Fatal("no-dwell bound infeasible")
	}
	if math.Abs(got-(te+eta)) > 1e-9 {
		t.Errorf("latest = %v, want te+noDwellEta = %v", got, te+eta)
	}
	if earliest, _, _ := kinematics.EarliestArrival(te, de, near.CurrentSpeed, near.Params); got < te+earliest {
		t.Errorf("latest %v before earliest %v", got, te+earliest)
	}
}
