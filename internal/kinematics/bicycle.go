package kinematics

import (
	"math"

	"crossroads/internal/geom"
)

// BicycleState is the state vector of the kinematic bicycle model used by
// the paper's Matlab simulators (eq. 7.1).
type BicycleState struct {
	Pos     geom.Vec2 // x, y in meters
	Heading float64   // phi, radians CCW from +X
	V       float64   // speed, m/s
}

// Pose returns the state's position and heading as a geom.Pose.
func (s BicycleState) Pose() geom.Pose { return geom.Pose{Pos: s.Pos, Heading: s.Heading} }

// BicycleInput is the control input: longitudinal acceleration and steering
// angle psi at the front axle.
type BicycleInput struct {
	Accel float64 // m/s^2
	Steer float64 // psi, radians
}

// bicycleDeriv evaluates eq. (7.1):
//
//	x'   = v cos(phi)
//	y'   = v sin(phi)
//	phi' = (v / l) tan(psi)
//	v'   = a
func bicycleDeriv(s BicycleState, u BicycleInput, wheelbase float64) (dx, dy, dphi, dv float64) {
	sin, cos := math.Sincos(s.Heading)
	dx = s.V * cos
	dy = s.V * sin
	dphi = s.V / wheelbase * math.Tan(u.Steer)
	dv = u.Accel
	return
}

// StepEuler advances the bicycle model by dt using explicit Euler
// integration. Speed is clamped at zero (the model does not reverse).
func StepEuler(s BicycleState, u BicycleInput, wheelbase, dt float64) BicycleState {
	dx, dy, dphi, dv := bicycleDeriv(s, u, wheelbase)
	s.Pos.X += dx * dt
	s.Pos.Y += dy * dt
	s.Heading = geom.NormalizeAngle(s.Heading + dphi*dt)
	s.V = math.Max(0, s.V+dv*dt)
	return s
}

// StepRK4 advances the bicycle model by dt using classic fourth-order
// Runge-Kutta integration with the input held constant over the step.
func StepRK4(s BicycleState, u BicycleInput, wheelbase, dt float64) BicycleState {
	type deriv struct{ dx, dy, dphi, dv float64 }
	eval := func(st BicycleState) deriv {
		dx, dy, dphi, dv := bicycleDeriv(st, u, wheelbase)
		return deriv{dx, dy, dphi, dv}
	}
	advance := func(st BicycleState, d deriv, h float64) BicycleState {
		st.Pos.X += d.dx * h
		st.Pos.Y += d.dy * h
		st.Heading += d.dphi * h
		st.V = math.Max(0, st.V+d.dv*h)
		return st
	}
	k1 := eval(s)
	k2 := eval(advance(s, k1, dt/2))
	k3 := eval(advance(s, k2, dt/2))
	k4 := eval(advance(s, k3, dt))
	combined := deriv{
		dx:   (k1.dx + 2*k2.dx + 2*k3.dx + k4.dx) / 6,
		dy:   (k1.dy + 2*k2.dy + 2*k3.dy + k4.dy) / 6,
		dphi: (k1.dphi + 2*k2.dphi + 2*k3.dphi + k4.dphi) / 6,
		dv:   (k1.dv + 2*k2.dv + 2*k3.dv + k4.dv) / 6,
	}
	out := advance(s, combined, dt)
	out.Heading = geom.NormalizeAngle(out.Heading)
	return out
}

// PurePursuit computes the steering angle that drives the bicycle model
// toward the point on the path at arc length sTarget (typically the
// vehicle's longitudinal progress plus a lookahead distance).
//
// The classic pure-pursuit law: psi = atan(2 l sin(alpha) / Ld), where alpha
// is the angle of the lookahead point in the vehicle frame and Ld the
// distance to it. The result is clamped to +-maxSteer.
func PurePursuit(s BicycleState, path geom.Path, sTarget, wheelbase, maxSteer float64) float64 {
	target := path.PoseAt(sTarget).Pos
	toTarget := target.Sub(s.Pos)
	ld := toTarget.Norm()
	if ld < 1e-6 {
		return 0
	}
	alpha := geom.AngleDiff(toTarget.Angle(), s.Heading)
	psi := math.Atan(2 * wheelbase * math.Sin(alpha) / ld)
	return geom.Clamp(psi, -maxSteer, maxSteer)
}

// PathTracker integrates a bicycle model along a geometric path while
// following a longitudinal velocity Profile, producing the 2-D motion the
// plant package perturbs with noise. It keeps the vehicle's arc-length
// progress so pose lookups stay O(1) per step.
type PathTracker struct {
	Path      geom.Path
	Wheelbase float64
	MaxSteer  float64 // radians, steering limit
	Lookahead float64 // meters ahead on the path for pure pursuit

	State    BicycleState
	Progress float64 // arc length traveled along the path
}

// NewPathTracker places a bicycle at the start of the path with the given
// initial speed.
func NewPathTracker(path geom.Path, wheelbase, v0 float64) *PathTracker {
	start := path.PoseAt(0)
	return &PathTracker{
		Path:      path,
		Wheelbase: wheelbase,
		MaxSteer:  0.6, // ~34 degrees, typical steering limit
		Lookahead: math.Max(2*wheelbase, 0.3),
		State: BicycleState{
			Pos:     start.Pos,
			Heading: start.Heading,
			V:       v0,
		},
	}
}

// Step advances the tracker by dt seconds, commanding the acceleration that
// tracks wantV (the profile velocity at the end of the step) and steering by
// pure pursuit. It returns the new state.
func (pt *PathTracker) Step(wantV, dt float64) BicycleState {
	if dt <= 0 {
		return pt.State
	}
	accel := (wantV - pt.State.V) / dt
	steer := PurePursuit(pt.State, pt.Path, pt.Progress+pt.Lookahead, pt.Wheelbase, pt.MaxSteer)
	prev := pt.State
	pt.State = StepRK4(pt.State, BicycleInput{Accel: accel, Steer: steer}, pt.Wheelbase, dt)
	// Advance progress by the distance actually covered (midpoint speed).
	pt.Progress += (prev.V + pt.State.V) / 2 * dt
	if pt.Progress > pt.Path.Length() {
		pt.Progress = pt.Path.Length()
	}
	return pt.State
}

// CrossTrackError returns the lateral distance between the vehicle position
// and the path point at the current progress.
func (pt *PathTracker) CrossTrackError() float64 {
	return pt.Path.PoseAt(pt.Progress).Pos.Dist(pt.State.Pos)
}

// Done reports whether the tracker has reached the end of the path.
func (pt *PathTracker) Done() bool {
	return pt.Progress >= pt.Path.Length()-1e-9
}
