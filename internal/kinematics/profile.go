package kinematics

import (
	"fmt"
	"math"
	"strings"
)

// Phase is one constant-acceleration piece of a velocity profile.
type Phase struct {
	Duration float64 // s, >= 0
	V0       float64 // m/s, velocity at the start of the phase
	Accel    float64 // m/s^2, constant acceleration during the phase
}

// VEnd returns the velocity at the end of the phase.
func (p Phase) VEnd() float64 { return p.V0 + p.Accel*p.Duration }

// Distance returns the distance covered during the phase.
func (p Phase) Distance() float64 {
	return p.V0*p.Duration + 0.5*p.Accel*p.Duration*p.Duration
}

// Profile is a longitudinal trajectory: a sequence of constant-acceleration
// phases anchored at an absolute start time. Distances are measured from the
// vehicle's position at StartTime. Beyond the final phase the profile
// extrapolates at the final velocity (constant-speed continuation), which
// matches the paper's vehicles that maintain their crossing velocity until
// exit.
type Profile struct {
	StartTime float64 // s, absolute simulation time of the profile origin
	Phases    []Phase
}

// NewProfile returns a profile anchored at startTime with the given phases.
// It panics if any phase has negative duration or if consecutive phases are
// velocity-discontinuous by more than 1e-6 m/s, since those indicate planner
// bugs.
func NewProfile(startTime float64, phases ...Phase) Profile {
	v := math.NaN()
	for i, ph := range phases {
		if ph.Duration < 0 {
			panic(fmt.Sprintf("kinematics: phase %d has negative duration %v", i, ph.Duration))
		}
		if i > 0 && math.Abs(ph.V0-v) > 1e-6 {
			panic(fmt.Sprintf("kinematics: velocity discontinuity at phase %d: %v -> %v", i, v, ph.V0))
		}
		v = ph.VEnd()
	}
	return Profile{StartTime: startTime, Phases: phases}
}

// Duration returns the total duration of all phases.
func (p Profile) Duration() float64 {
	var d float64
	for _, ph := range p.Phases {
		d += ph.Duration
	}
	return d
}

// EndTime returns StartTime + Duration.
func (p Profile) EndTime() float64 { return p.StartTime + p.Duration() }

// FinalVelocity returns the velocity at the end of the last phase (and hence
// the extrapolation speed). An empty profile has final velocity 0.
func (p Profile) FinalVelocity() float64 {
	if len(p.Phases) == 0 {
		return 0
	}
	return p.Phases[len(p.Phases)-1].VEnd()
}

// TotalDistance returns the distance covered by the phases themselves
// (excluding constant-speed extrapolation).
func (p Profile) TotalDistance() float64 {
	var d float64
	for _, ph := range p.Phases {
		d += ph.Distance()
	}
	return d
}

// VelocityAt returns the velocity at absolute time t. Before StartTime the
// initial velocity is returned (the vehicle holds its speed until the
// profile begins); past the end, the final velocity.
func (p Profile) VelocityAt(t float64) float64 {
	if len(p.Phases) == 0 {
		return 0
	}
	dt := t - p.StartTime
	if dt <= 0 {
		return p.Phases[0].V0
	}
	for _, ph := range p.Phases {
		if dt <= ph.Duration {
			return ph.V0 + ph.Accel*dt
		}
		dt -= ph.Duration
	}
	return p.FinalVelocity()
}

// DistanceAt returns the distance traveled since StartTime at absolute time
// t. For t before StartTime it returns the (negative) backward extrapolation
// at the initial velocity: the vehicle was approaching at constant speed.
func (p Profile) DistanceAt(t float64) float64 {
	dt := t - p.StartTime
	if len(p.Phases) == 0 {
		return 0
	}
	if dt <= 0 {
		return p.Phases[0].V0 * dt
	}
	var dist float64
	for _, ph := range p.Phases {
		if dt <= ph.Duration {
			return dist + ph.V0*dt + 0.5*ph.Accel*dt*dt
		}
		dist += ph.Distance()
		dt -= ph.Duration
	}
	return dist + p.FinalVelocity()*dt
}

// TimeAtDistance returns the absolute time at which the profile first
// reaches the given distance from its origin, using constant-speed
// extrapolation past the final phase. It returns +Inf if the distance is
// never reached (for example the profile ends stopped short of it).
func (p Profile) TimeAtDistance(d float64) float64 {
	if d <= 0 {
		return p.StartTime
	}
	var dist, t float64
	for _, ph := range p.Phases {
		phd := ph.Distance()
		if dist+phd >= d-1e-12 {
			// Solve 0.5*a*dt^2 + v0*dt = d - dist within this phase.
			need := d - dist
			dt := solvePhaseTime(ph.V0, ph.Accel, need, ph.Duration)
			if math.IsNaN(dt) {
				// Numerical edge: fall through to next phase.
				dist += phd
				t += ph.Duration
				continue
			}
			return p.StartTime + t + dt
		}
		dist += phd
		t += ph.Duration
	}
	v := p.FinalVelocity()
	if v <= 1e-12 {
		return math.Inf(1)
	}
	return p.StartTime + t + (d-dist)/v
}

// solvePhaseTime returns the smallest dt in [0, maxDt] such that
// v0*dt + a*dt^2/2 = need, or NaN if none exists.
func solvePhaseTime(v0, a, need, maxDt float64) float64 {
	const tol = 1e-9
	if need <= 0 {
		return 0
	}
	if math.Abs(a) < 1e-12 {
		if v0 <= 1e-12 {
			return math.NaN()
		}
		dt := need / v0
		if dt <= maxDt+tol {
			return math.Min(dt, maxDt)
		}
		return math.NaN()
	}
	disc := v0*v0 + 2*a*need
	if disc < 0 {
		return math.NaN()
	}
	sq := math.Sqrt(disc)
	// Candidate roots.
	r1 := (-v0 + sq) / a
	r2 := (-v0 - sq) / a
	best := math.NaN()
	for _, r := range []float64{r1, r2} {
		if r >= -tol && r <= maxDt+tol {
			if math.IsNaN(best) || r < best {
				best = r
			}
		}
	}
	if !math.IsNaN(best) {
		return math.Max(0, math.Min(best, maxDt))
	}
	return math.NaN()
}

// Shift returns a copy of the profile with its start time moved by dt.
func (p Profile) Shift(dt float64) Profile {
	q := p
	q.StartTime += dt
	q.Phases = append([]Phase(nil), p.Phases...)
	return q
}

// Append returns a copy with an extra phase at the end. The new phase's V0
// must match the current final velocity.
func (p Profile) Append(ph Phase) Profile {
	if len(p.Phases) > 0 && math.Abs(ph.V0-p.FinalVelocity()) > 1e-6 {
		panic(fmt.Sprintf("kinematics: Append velocity discontinuity: %v -> %v", p.FinalVelocity(), ph.V0))
	}
	q := p
	q.Phases = append(append([]Phase(nil), p.Phases...), ph)
	return q
}

// String renders a compact human-readable description of the profile.
func (p Profile) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Profile(t0=%.3f", p.StartTime)
	for _, ph := range p.Phases {
		fmt.Fprintf(&b, " [%.3fs v0=%.2f a=%.2f]", ph.Duration, ph.V0, ph.Accel)
	}
	b.WriteString(")")
	return b.String()
}

// HoldProfile returns a profile that holds velocity v from startTime for the
// given duration.
func HoldProfile(startTime, v, duration float64) Profile {
	return NewProfile(startTime, Phase{Duration: duration, V0: v, Accel: 0})
}

// RampProfile returns a profile that changes speed from v0 to v1 at the
// given (positive) rate magnitude, starting at startTime.
func RampProfile(startTime, v0, v1, rate float64) Profile {
	if rate <= 0 {
		panic("kinematics: RampProfile rate must be positive")
	}
	if v1 == v0 {
		return NewProfile(startTime)
	}
	a := rate
	if v1 < v0 {
		a = -rate
	}
	return NewProfile(startTime, Phase{Duration: math.Abs(v1-v0) / rate, V0: v0, Accel: a})
}

// StopProfile returns a profile that brakes from v to a stop at the maximum
// deceleration of params, starting at startTime, and then remains stopped.
func StopProfile(startTime, v float64, params Params) Profile {
	if v <= 0 {
		return NewProfile(startTime, Phase{Duration: 0, V0: 0})
	}
	return NewProfile(startTime, Phase{Duration: v / params.MaxDecel, V0: v, Accel: -params.MaxDecel})
}
