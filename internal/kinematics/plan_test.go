package kinematics

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestParamsValidate(t *testing.T) {
	good := ScaleModelParams()
	if err := good.Validate(); err != nil {
		t.Fatalf("scale params invalid: %v", err)
	}
	if err := FullScaleParams().Validate(); err != nil {
		t.Fatalf("full-scale params invalid: %v", err)
	}
	bad := []Params{
		{MaxAccel: 1, MaxDecel: 1, Length: 1, Width: 1, Wheelbase: 1},               // no speed
		{MaxSpeed: 1, MaxDecel: 1, Length: 1, Width: 1, Wheelbase: 1},               // no accel
		{MaxSpeed: 1, MaxAccel: 1, Length: 1, Width: 1, Wheelbase: 1},               // no decel
		{MaxSpeed: 1, MaxAccel: 1, MaxDecel: 1, Width: 1, Wheelbase: 1},             // no length
		{MaxSpeed: 1, MaxAccel: 1, MaxDecel: 1, Length: 1, Wheelbase: 1},            // no width
		{MaxSpeed: 1, MaxAccel: 1, MaxDecel: 1, Length: 1, Width: 1},                // no wheelbase
		{MaxSpeed: -1, MaxAccel: 1, MaxDecel: 1, Length: 1, Width: 1, Wheelbase: 1}, // negative
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d validated", i)
		}
	}
}

func TestStoppingDistance(t *testing.T) {
	p := Params{MaxSpeed: 10, MaxAccel: 2, MaxDecel: 4, Length: 1, Width: 1, Wheelbase: 1}
	if got := p.StoppingDistance(4); !almostEq(got, 2, 1e-12) {
		t.Errorf("StoppingDistance(4) = %v, want 2", got)
	}
	if got := p.StoppingDistance(0); got != 0 {
		t.Errorf("StoppingDistance(0) = %v", got)
	}
	if got := p.StoppingDistance(-1); got != 0 {
		t.Errorf("StoppingDistance(-1) = %v", got)
	}
}

func TestEarliestArrivalPaperFormula(t *testing.T) {
	// Paper Ch.6: TAcc = (Vmax-Vinit)/amax, DeltaX = 0.5*a*TAcc^2+Vinit*TAcc,
	// EToA = TAcc + (D-DeltaX)/Vmax. Scale model: Vmax=3, a=3.
	p := ScaleModelParams()
	vInit := 1.0
	dist := 3.0
	tAcc := (3.0 - 1.0) / 3.0
	deltaX := 0.5*3*tAcc*tAcc + 1*tAcc
	want := tAcc + (dist-deltaX)/3.0
	eta, vArr, prof := EarliestArrival(0, dist, vInit, p)
	if !almostEq(eta, want, 1e-9) {
		t.Errorf("EToA = %v, want %v", eta, want)
	}
	if vArr != 3 {
		t.Errorf("vArr = %v, want Vmax", vArr)
	}
	if !almostEq(prof.TotalDistance(), dist, 1e-9) {
		t.Errorf("profile distance = %v, want %v", prof.TotalDistance(), dist)
	}
	if !almostEq(prof.Duration(), want, 1e-9) {
		t.Errorf("profile duration = %v, want %v", prof.Duration(), want)
	}
}

func TestEarliestArrivalShortDistance(t *testing.T) {
	// Too short to reach Vmax: arrival while accelerating.
	p := ScaleModelParams()
	eta, vArr, prof := EarliestArrival(0, 0.5, 0, p)
	// 0.5 = 0.5*3*t^2 => t = sqrt(1/3).
	want := math.Sqrt(1.0 / 3.0)
	if !almostEq(eta, want, 1e-9) {
		t.Errorf("eta = %v, want %v", eta, want)
	}
	if !almostEq(vArr, 3*want, 1e-9) {
		t.Errorf("vArr = %v, want %v", vArr, 3*want)
	}
	if !almostEq(prof.TotalDistance(), 0.5, 1e-9) {
		t.Errorf("distance = %v", prof.TotalDistance())
	}
}

func TestEarliestArrivalEdgeCases(t *testing.T) {
	p := ScaleModelParams()
	eta, vArr, _ := EarliestArrival(0, 0, 2, p)
	if eta != 0 || vArr != 2 {
		t.Errorf("zero distance: eta=%v vArr=%v", eta, vArr)
	}
	// vInit above MaxSpeed gets clamped.
	eta, vArr, _ = EarliestArrival(0, 3, 99, p)
	if !almostEq(eta, 1, 1e-9) || vArr != 3 {
		t.Errorf("clamped: eta=%v vArr=%v", eta, vArr)
	}
	// Already at max speed: pure cruise.
	eta, _, prof := EarliestArrival(0, 6, 3, p)
	if !almostEq(eta, 2, 1e-9) {
		t.Errorf("cruise eta = %v, want 2", eta)
	}
	if len(prof.Phases) != 2 || prof.Phases[0].Duration != 0 {
		// Acceleration phase should be zero-length.
		if !almostEq(prof.Duration(), 2, 1e-9) {
			t.Errorf("cruise profile = %v", prof)
		}
	}
}

func TestPlanArrivalExactEarliest(t *testing.T) {
	p := ScaleModelParams()
	eta, _, _ := EarliestArrival(0, 3, 1, p)
	prof, err := PlanArrival(5, 3, 1, 5+eta, p)
	if err != nil {
		t.Fatalf("PlanArrival at earliest failed: %v", err)
	}
	if !almostEq(prof.TimeAtDistance(3), 5+eta, 1e-3) {
		t.Errorf("arrival = %v, want %v", prof.TimeAtDistance(3), 5+eta)
	}
}

func TestPlanArrivalInfeasible(t *testing.T) {
	p := ScaleModelParams()
	eta, _, _ := EarliestArrival(0, 3, 1, p)
	_, err := PlanArrival(0, 3, 1, eta-0.5, p)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestPlanArrivalInvalidInputs(t *testing.T) {
	if _, err := PlanArrival(0, 3, 1, 2, Params{}); err == nil {
		t.Error("invalid params accepted")
	}
	if _, err := PlanArrival(0, -1, 1, 2, ScaleModelParams()); err == nil {
		t.Error("negative distance accepted")
	}
}

func TestPlanArrivalDipExact(t *testing.T) {
	// Ask for an arrival 1 s after earliest: plan must dip and still cover
	// exactly the distance at exactly the requested time.
	p := ScaleModelParams()
	dist := 3.0
	vInit := 2.0
	eta, _, _ := EarliestArrival(0, dist, vInit, p)
	want := eta + 1.0
	prof, err := PlanArrival(0, dist, vInit, want, p)
	if err != nil {
		t.Fatal(err)
	}
	got := prof.TimeAtDistance(dist)
	if !almostEq(got, want, 5e-3) {
		t.Errorf("arrival = %v, want %v", got, want)
	}
	// Velocity must never go negative or exceed MaxSpeed.
	for tt := 0.0; tt <= prof.Duration(); tt += 0.01 {
		v := prof.VelocityAt(tt)
		if v < -1e-9 || v > p.MaxSpeed+1e-9 {
			t.Fatalf("velocity %v out of range at t=%v", v, tt)
		}
	}
}

func TestPlanArrivalStopAndDwell(t *testing.T) {
	// Very late arrival forces stop-and-wait.
	p := ScaleModelParams()
	dist := 3.0
	vInit := 3.0
	want := 20.0
	prof, err := PlanArrival(0, dist, vInit, want, p)
	if err != nil {
		t.Fatal(err)
	}
	got := prof.TimeAtDistance(dist)
	if !almostEq(got, want, 5e-3) {
		t.Errorf("arrival = %v, want %v", got, want)
	}
	// Must contain a stopped dwell.
	foundDwell := false
	for _, ph := range prof.Phases {
		if ph.V0 < 1e-9 && ph.Accel == 0 && ph.Duration > 1 {
			foundDwell = true
		}
	}
	if !foundDwell {
		t.Errorf("no dwell phase in %v", prof)
	}
	// Arrival velocity should be the max launch speed from a standing
	// start over the remaining distance.
	dStop := p.StoppingDistance(vInit)
	rem := dist - dStop
	wantV := math.Min(p.MaxSpeed, math.Sqrt(2*p.MaxAccel*rem))
	if !almostEq(prof.VelocityAt(prof.TimeAtDistance(dist)), wantV, 1e-3) {
		t.Errorf("arrival velocity = %v, want %v", prof.VelocityAt(prof.TimeAtDistance(dist)), wantV)
	}
}

func TestPlanArrivalRandomized(t *testing.T) {
	p := ScaleModelParams()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		vInit := rng.Float64() * p.MaxSpeed
		// Keep the line beyond the stopping distance so arbitrarily late
		// arrivals stay physically feasible (the protocol's safe-stop
		// clause guarantees this in the real system).
		dist := p.StoppingDistance(vInit) + 0.1 + rng.Float64()*5
		eta, _, _ := EarliestArrival(0, dist, vInit, p)
		extra := rng.Float64() * 10
		want := eta + extra
		prof, err := PlanArrival(0, dist, vInit, want, p)
		if err != nil {
			t.Fatalf("case %d (d=%v v=%v want=%v): %v", i, dist, vInit, want, err)
		}
		got := prof.TimeAtDistance(dist)
		if !almostEq(got, want, 1e-2) {
			t.Fatalf("case %d: arrival %v, want %v (d=%v v=%v)", i, got, want, dist, vInit)
		}
		// Profile covers at least the distance.
		if prof.TotalDistance() < dist-1e-6 {
			t.Fatalf("case %d: profile too short: %v < %v", i, prof.TotalDistance(), dist)
		}
		for tt := 0.0; tt <= prof.Duration(); tt += prof.Duration() / 50 {
			v := prof.VelocityAt(tt)
			if v < -1e-9 || v > p.MaxSpeed+1e-9 {
				t.Fatalf("case %d: velocity %v out of bounds", i, v)
			}
		}
	}
}

func TestPlanArrivalTooCloseToSlowDown(t *testing.T) {
	// Vehicle 0.5 m out at full speed cannot stop; the planner returns the
	// latest feasible (deepest-dip) profile instead of failing.
	p := ScaleModelParams()
	dist := 0.5
	vInit := 3.0
	prof, err := PlanArrival(0, dist, vInit, 99, p)
	if err != nil {
		t.Fatal(err)
	}
	got := prof.TimeAtDistance(dist)
	if math.IsInf(got, 1) {
		t.Fatal("deepest-dip profile never arrives")
	}
	// Latest possible: brake at max the whole way. v^2 = v0^2 - 2*d*dist.
	vEnd := math.Sqrt(vInit*vInit - 2*p.MaxDecel*dist)
	latest := (vInit - vEnd) / p.MaxDecel
	if !almostEq(got, latest, 1e-2) {
		t.Errorf("arrival = %v, want latest %v", got, latest)
	}
}

func TestVTArrivalHoldSpeed(t *testing.T) {
	p := ScaleModelParams()
	// Want arrival in exactly dist/v seconds when already at v: VT == v.
	v, err := VTArrival(3, 1.5, 2, p)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(v, 1.5, 1e-3) {
		t.Errorf("VT = %v, want 1.5", v)
	}
}

func TestVTArrivalEarlierThanPossible(t *testing.T) {
	p := ScaleModelParams()
	// Requested arrival earlier than earliest: returns max-profile arrival speed.
	v, err := VTArrival(3, 1, 0.1, p)
	if err != nil {
		t.Fatal(err)
	}
	if v != 3 {
		t.Errorf("VT = %v, want Vmax", v)
	}
}

func TestVTArrivalSlowDown(t *testing.T) {
	p := ScaleModelParams()
	dist := 3.0
	vInit := 3.0
	want := 4.0 // needs roughly 0.75 m/s average
	v, err := VTArrival(dist, vInit, want, p)
	if err != nil {
		t.Fatal(err)
	}
	if v >= vInit {
		t.Fatalf("VT = %v, expected slowdown below %v", v, vInit)
	}
	// Verify the ramp-hold profile actually arrives on time.
	prof := RampHoldProfile(0, dist, vInit, v, p)
	got := prof.TimeAtDistance(dist)
	if !almostEq(got, want, 5e-2) {
		t.Errorf("ramp-hold arrival = %v, want %v", got, want)
	}
}

func TestVTArrivalCrawlInfeasible(t *testing.T) {
	p := ScaleModelParams()
	// A vehicle at full speed 0.1 m out cannot arrive 100 s later.
	_, err := VTArrival(0.1, 3, 100, p)
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestRampHoldProfileCoversDistance(t *testing.T) {
	p := ScaleModelParams()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		dist := 0.5 + rng.Float64()*5
		vInit := rng.Float64() * 3
		vTarget := 0.2 + rng.Float64()*2.8
		prof := RampHoldProfile(0, dist, vInit, vTarget, p)
		if prof.TotalDistance() < dist-1e-6 {
			// Allowed only if the truncated ramp covers it exactly.
			t.Fatalf("case %d: distance %v < %v", i, prof.TotalDistance(), dist)
		}
		if !almostEq(prof.TotalDistance(), dist, 1e-6) {
			t.Fatalf("case %d: distance %v != %v", i, prof.TotalDistance(), dist)
		}
	}
}

func TestRampHoldProfileTruncatedRamp(t *testing.T) {
	p := ScaleModelParams()
	// Distance so short the ramp cannot complete.
	prof := RampHoldProfile(0, 0.1, 0, 3, p)
	if !almostEq(prof.TotalDistance(), 0.1, 1e-9) {
		t.Errorf("truncated ramp distance = %v", prof.TotalDistance())
	}
	if prof.FinalVelocity() >= 3 {
		t.Errorf("truncated ramp reached target velocity")
	}
}

func TestPlanConstantSpeed(t *testing.T) {
	prof, eta := PlanConstantSpeed(2, 6, 3)
	if !almostEq(eta, 2, 1e-12) {
		t.Errorf("eta = %v", eta)
	}
	if !almostEq(prof.TimeAtDistance(6), 4, 1e-9) {
		t.Errorf("arrival = %v", prof.TimeAtDistance(6))
	}
	_, inf := PlanConstantSpeed(0, 6, 0)
	if !math.IsInf(inf, 1) {
		t.Errorf("zero-speed eta = %v", inf)
	}
}

func TestSlowestPoint(t *testing.T) {
	p := ScaleModelParams()
	// A dip plan with a dwell: the slow point is the dwell at distance
	// stoppingDistance from the start.
	prof, err := PlanArrival(0, 3.0, 3.0, 10.0, p)
	if err != nil {
		t.Fatal(err)
	}
	minV, remaining := SlowestPoint(prof, 3.0)
	if minV > 1e-9 {
		t.Errorf("dwell plan minV = %v, want 0", minV)
	}
	// Dwell at 1.5 m in (stopping distance from 3 m/s at 3 m/s^2):
	// remaining = 1.5.
	if !almostEq(remaining, 1.5, 1e-6) {
		t.Errorf("dwell remaining = %v, want 1.5", remaining)
	}

	// A cruise profile's slow point is its constant speed, at the end.
	hold := HoldProfile(0, 2, 3)
	minV, remaining = SlowestPoint(hold, 6)
	if minV != 2 {
		t.Errorf("hold minV = %v", minV)
	}
	if !almostEq(remaining, 6, 1e-9) && !almostEq(remaining, 0, 1e-9) {
		// Constant speed: start and end tie; either endpoint is fine.
		t.Errorf("hold remaining = %v", remaining)
	}

	// An accelerating profile bottoms at its start.
	acc := NewProfile(0, Phase{Duration: 1, V0: 1, Accel: 2})
	minV, remaining = SlowestPoint(acc, 2)
	if minV != 1 || !almostEq(remaining, 2, 1e-9) {
		t.Errorf("accel slow point = %v at remaining %v", minV, remaining)
	}

	// Empty profile.
	minV, remaining = SlowestPoint(Profile{}, 5)
	if minV != 0 || remaining != 5 {
		t.Errorf("empty profile = %v, %v", minV, remaining)
	}
}

func TestSlowestPointDipWithoutDwell(t *testing.T) {
	p := ScaleModelParams()
	// Moderate delay: a dip that bottoms above zero mid-approach.
	eta, _, _ := EarliestArrival(0, 3.0, 3.0, p)
	prof, err := PlanArrival(0, 3.0, 3.0, eta+0.4, p)
	if err != nil {
		t.Fatal(err)
	}
	minV, remaining := SlowestPoint(prof, 3.0)
	if minV <= 0 || minV >= 3 {
		t.Errorf("dip bottom = %v, want within (0, 3)", minV)
	}
	if remaining <= 0 || remaining >= 3 {
		t.Errorf("dip bottom remaining = %v", remaining)
	}
}

func TestLatestNoDwell(t *testing.T) {
	// A vehicle 15 m out at 12 m/s (full scale) can no longer stop behind a
	// 5.13 m lip: its latest *safe* arrival is the deepest no-dwell dip.
	p := FullScaleParams()
	dist, vInit, floor := 15.0, 12.0, 0.1

	eta, ok := LatestNoDwell(dist, vInit, floor, p)
	if !ok {
		t.Fatal("no-dwell bound infeasible")
	}
	earliest, _, _ := EarliestArrival(0, dist, vInit, p)
	if eta <= earliest {
		t.Fatalf("latest %v not after earliest %v", eta, earliest)
	}
	// The bound is realizable without dwelling: a plan targeting it covers
	// the distance on time and never slows below the floor.
	prof, err := PlanArrival(0, dist, vInit, eta, p)
	if err != nil {
		t.Fatal(err)
	}
	if got := prof.TimeAtDistance(dist); !almostEq(got, eta, 1e-2) {
		t.Errorf("arrival = %v, want %v", got, eta)
	}
	if minV, _ := SlowestPoint(prof, dist); minV < floor-1e-6 {
		t.Errorf("plan dips to %v, below floor %v", minV, floor)
	}
	// And it is tight: arriving appreciably later forces a stop-and-dwell
	// profile, which is exactly what the bound exists to exclude.
	late, err := PlanArrival(0, dist, vInit, eta+1.0, p)
	if err != nil {
		t.Fatal(err)
	}
	if minV, _ := SlowestPoint(late, dist); minV >= floor {
		t.Errorf("arrival %v past the bound still floats above the floor (minV %v)", eta+1.0, minV)
	}
}

func TestLatestNoDwellHigherFloorIsEarlier(t *testing.T) {
	p := FullScaleParams()
	low, ok1 := LatestNoDwell(15, 12, 0.1, p)
	high, ok2 := LatestNoDwell(15, 12, 2.0, p)
	if !ok1 || !ok2 {
		t.Fatal("bounds infeasible")
	}
	if high >= low {
		t.Errorf("floor 2.0 bound %v not earlier than floor 0.1 bound %v", high, low)
	}
}

func TestLatestNoDwellFloorAboveCurrentSpeed(t *testing.T) {
	// When the floor exceeds the current speed the dip degenerates: the
	// vehicle cannot slow at all, so the latest equals the earliest.
	p := FullScaleParams()
	eta, ok := LatestNoDwell(10, 1.0, 5.0, p)
	if !ok {
		t.Fatal("degenerate bound infeasible")
	}
	earliest, _, _ := EarliestArrival(0, 10, 1.0, p)
	if !almostEq(eta, earliest, 1e-6) {
		t.Errorf("degenerate latest %v != earliest %v", eta, earliest)
	}
}

func TestLatestNoDwellInvalid(t *testing.T) {
	p := FullScaleParams()
	if _, ok := LatestNoDwell(-1, 3, 0.1, p); ok {
		t.Error("negative distance accepted")
	}
	if _, ok := LatestNoDwell(5, 3, 0.1, Params{}); ok {
		t.Error("invalid params accepted")
	}
}
