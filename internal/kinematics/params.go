// Package kinematics models the longitudinal and lateral motion of the
// simulated vehicles.
//
// Longitudinal motion is described by piecewise-constant-acceleration
// velocity profiles (Profile). The planners in this package implement the
// trajectory math of the Crossroads paper (Chapter 6): the earliest time of
// arrival EToA given maximum acceleration, and profiles that arrive at the
// intersection at an exact target time with the highest feasible velocity.
//
// Lateral motion uses the kinematic bicycle model of the paper's eq. (7.1):
//
//	x' = v cos(phi),  y' = v sin(phi),  phi' = (v/l) tan(psi)
//
// integrated with explicit Euler or RK4, with a pure-pursuit steering
// controller to track a geometric path.
package kinematics

import (
	"errors"
	"fmt"
)

// Params are the physical capabilities and dimensions of a vehicle. All
// values must be positive. These correspond to the paper's VehicleInfo
// packet fields (max acceleration, max deceleration, max speed, length,
// width).
type Params struct {
	MaxSpeed  float64 // m/s
	MaxAccel  float64 // m/s^2, magnitude of maximum acceleration
	MaxDecel  float64 // m/s^2, magnitude of maximum braking deceleration
	Length    float64 // m, vehicle body length
	Width     float64 // m, vehicle body width
	Wheelbase float64 // m, axle distance l in the bicycle model
}

// Validate returns an error describing the first invalid field, or nil.
func (p Params) Validate() error {
	switch {
	case p.MaxSpeed <= 0:
		return fmt.Errorf("kinematics: MaxSpeed %v must be positive", p.MaxSpeed)
	case p.MaxAccel <= 0:
		return fmt.Errorf("kinematics: MaxAccel %v must be positive", p.MaxAccel)
	case p.MaxDecel <= 0:
		return fmt.Errorf("kinematics: MaxDecel %v must be positive", p.MaxDecel)
	case p.Length <= 0:
		return fmt.Errorf("kinematics: Length %v must be positive", p.Length)
	case p.Width <= 0:
		return fmt.Errorf("kinematics: Width %v must be positive", p.Width)
	case p.Wheelbase <= 0:
		return fmt.Errorf("kinematics: Wheelbase %v must be positive", p.Wheelbase)
	}
	return nil
}

// StoppingDistance returns the distance needed to brake from speed v to a
// complete stop at maximum deceleration.
func (p Params) StoppingDistance(v float64) float64 {
	if v <= 0 {
		return 0
	}
	return v * v / (2 * p.MaxDecel)
}

// ScaleModelParams returns the parameters of the paper's 1/10-scale Traxxas
// vehicles (Chapter 2): 0.568 m x 0.296 m body, 3 m/s speed cap. The
// acceleration limits and wheelbase are not stated numerically in the paper;
// the values here (3 m/s^2 accel/decel, 0.335 m wheelbase of a Traxxas Slash)
// were chosen so the scale vehicles clear the 3 m approach as in Fig. 1.1.
func ScaleModelParams() Params {
	return Params{
		MaxSpeed:  3.0,
		MaxAccel:  3.0,
		MaxDecel:  3.0,
		Length:    0.568,
		Width:     0.296,
		Wheelbase: 0.335,
	}
}

// FullScaleParams returns parameters representative of a full-size passenger
// car, used by the scalability simulations: 15 m/s cap (~54 km/h urban),
// 3 m/s^2 accel, 5 m/s^2 braking.
func FullScaleParams() Params {
	return Params{
		MaxSpeed:  15.0,
		MaxAccel:  3.0,
		MaxDecel:  5.0,
		Length:    4.5,
		Width:     1.8,
		Wheelbase: 2.7,
	}
}

// ErrInfeasible is returned by planners when no profile satisfying the
// requested constraints exists (for example, a requested arrival earlier
// than the earliest kinematically reachable arrival).
var ErrInfeasible = errors.New("kinematics: requested trajectory is infeasible")
