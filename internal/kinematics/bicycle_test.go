package kinematics

import (
	"math"
	"testing"

	"crossroads/internal/geom"
)

func TestBicycleStraightLine(t *testing.T) {
	s := BicycleState{Pos: geom.V(0, 0), Heading: 0, V: 2}
	u := BicycleInput{Accel: 0, Steer: 0}
	for i := 0; i < 100; i++ {
		s = StepEuler(s, u, 0.3, 0.01)
	}
	if !s.Pos.ApproxEq(geom.V(2, 0), 1e-9) {
		t.Errorf("pos = %v, want (2,0)", s.Pos)
	}
	if s.Heading != 0 || s.V != 2 {
		t.Errorf("heading=%v v=%v", s.Heading, s.V)
	}
}

func TestBicycleAcceleration(t *testing.T) {
	s := BicycleState{V: 0}
	u := BicycleInput{Accel: 1}
	for i := 0; i < 100; i++ {
		s = StepRK4(s, u, 0.3, 0.01)
	}
	if !almostEq(s.V, 1, 1e-9) {
		t.Errorf("v = %v, want 1", s.V)
	}
	// Distance ~ 0.5*a*t^2 = 0.5.
	if !almostEq(s.Pos.X, 0.5, 1e-6) {
		t.Errorf("x = %v, want 0.5", s.Pos.X)
	}
}

func TestBicycleSpeedClampedAtZero(t *testing.T) {
	s := BicycleState{V: 0.5}
	u := BicycleInput{Accel: -10}
	for i := 0; i < 100; i++ {
		s = StepEuler(s, u, 0.3, 0.01)
		if s.V < 0 {
			t.Fatalf("speed went negative: %v", s.V)
		}
	}
	s2 := BicycleState{V: 0.5}
	for i := 0; i < 100; i++ {
		s2 = StepRK4(s2, u, 0.3, 0.01)
		if s2.V < 0 {
			t.Fatalf("RK4 speed went negative: %v", s2.V)
		}
	}
}

func TestBicycleTurningRadius(t *testing.T) {
	// At constant steer psi, the bicycle follows a circle of radius
	// R = l / tan(psi). Verify with RK4 after a full quarter turn.
	l := 0.335
	psi := 0.3
	radius := l / math.Tan(psi)
	s := BicycleState{Pos: geom.V(0, 0), Heading: 0, V: 1}
	u := BicycleInput{Steer: psi}
	// Circle center should be at (0, R).
	center := geom.V(0, radius)
	dt := 0.001
	for i := 0; i < 5000; i++ {
		s = StepRK4(s, u, l, dt)
		if d := s.Pos.Dist(center); !almostEq(d, radius, 1e-3) {
			t.Fatalf("step %d: radius drifted to %v, want %v", i, d, radius)
		}
	}
}

func TestRK4MoreAccurateThanEuler(t *testing.T) {
	// Compare against a fine-step reference on a turning trajectory.
	l := 0.3
	u := BicycleInput{Accel: 0.5, Steer: 0.2}
	ref := BicycleState{V: 1}
	for i := 0; i < 100000; i++ {
		ref = StepRK4(ref, u, l, 1e-5)
	}
	euler := BicycleState{V: 1}
	rk4 := BicycleState{V: 1}
	for i := 0; i < 100; i++ {
		euler = StepEuler(euler, u, l, 0.01)
		rk4 = StepRK4(rk4, u, l, 0.01)
	}
	errEuler := euler.Pos.Dist(ref.Pos)
	errRK4 := rk4.Pos.Dist(ref.Pos)
	if errRK4 >= errEuler {
		t.Errorf("RK4 error %v not better than Euler %v", errRK4, errEuler)
	}
}

func TestPurePursuitStraight(t *testing.T) {
	path := geom.LinePath{Start: geom.V(0, 0), End: geom.V(10, 0)}
	s := BicycleState{Pos: geom.V(0, 0), Heading: 0, V: 1}
	psi := PurePursuit(s, path, 1, 0.3, 0.6)
	if !almostEq(psi, 0, 1e-9) {
		t.Errorf("steer on straight path = %v, want 0", psi)
	}
	// Offset left of the path: should steer right (negative).
	s.Pos = geom.V(0, 0.5)
	psi = PurePursuit(s, path, 1, 0.3, 0.6)
	if psi >= 0 {
		t.Errorf("steer = %v, want negative (turn right)", psi)
	}
	// Offset right: steer left.
	s.Pos = geom.V(0, -0.5)
	psi = PurePursuit(s, path, 1, 0.3, 0.6)
	if psi <= 0 {
		t.Errorf("steer = %v, want positive (turn left)", psi)
	}
}

func TestPurePursuitClamped(t *testing.T) {
	path := geom.LinePath{Start: geom.V(0, 0), End: geom.V(10, 0)}
	s := BicycleState{Pos: geom.V(0, 3), Heading: math.Pi / 2, V: 1}
	psi := PurePursuit(s, path, 0.5, 0.3, 0.4)
	if math.Abs(psi) > 0.4+1e-12 {
		t.Errorf("steer %v exceeds clamp", psi)
	}
	// Degenerate: standing on the target.
	s2 := BicycleState{Pos: path.PoseAt(1).Pos}
	if got := PurePursuit(s2, path, 1, 0.3, 0.6); got != 0 {
		t.Errorf("steer at target = %v", got)
	}
}

func TestPathTrackerFollowsStraight(t *testing.T) {
	path := geom.LinePath{Start: geom.V(0, 0), End: geom.V(5, 0)}
	pt := NewPathTracker(path, 0.335, 1)
	for i := 0; i < 600 && !pt.Done(); i++ {
		pt.Step(1, 0.01)
	}
	if !pt.Done() {
		t.Fatalf("tracker did not finish: progress %v", pt.Progress)
	}
	if e := pt.CrossTrackError(); e > 0.01 {
		t.Errorf("cross-track error %v too large", e)
	}
}

func TestPathTrackerFollowsTurn(t *testing.T) {
	// Straight, then a left quarter turn with 0.9 m radius (scale-model
	// left-turn geometry), then straight.
	entry := geom.LinePath{Start: geom.V(-2, 0), End: geom.V(0, 0)}
	arc := geom.ArcBetween(geom.V(0, 0), 0, math.Pi/2, 0.9)
	exitStart := arc.PoseAt(arc.Length()).Pos
	exit := geom.LinePath{Start: exitStart, End: exitStart.Add(geom.V(0, 2))}
	path := geom.NewCompositePath(entry, arc, exit)

	pt := NewPathTracker(path, 0.335, 1.5)
	pt.Lookahead = 0.4
	maxErr := 0.0
	for i := 0; i < 10000 && !pt.Done(); i++ {
		pt.Step(1.5, 0.005)
		if e := pt.CrossTrackError(); e > maxErr {
			maxErr = e
		}
	}
	if !pt.Done() {
		t.Fatalf("tracker did not finish: progress %v of %v", pt.Progress, path.Length())
	}
	if maxErr > 0.15 {
		t.Errorf("max cross-track error %v exceeds 0.15 m", maxErr)
	}
}

func TestPathTrackerZeroDt(t *testing.T) {
	path := geom.LinePath{Start: geom.V(0, 0), End: geom.V(5, 0)}
	pt := NewPathTracker(path, 0.335, 1)
	before := pt.State
	after := pt.Step(1, 0)
	if after != before {
		t.Errorf("zero-dt step changed state")
	}
}

func TestPathTrackerProgressClamped(t *testing.T) {
	path := geom.LinePath{Start: geom.V(0, 0), End: geom.V(0.5, 0)}
	pt := NewPathTracker(path, 0.335, 3)
	for i := 0; i < 200; i++ {
		pt.Step(3, 0.01)
	}
	if pt.Progress > path.Length() {
		t.Errorf("progress %v exceeds path length %v", pt.Progress, path.Length())
	}
}

func TestBicycleStatePose(t *testing.T) {
	s := BicycleState{Pos: geom.V(1, 2), Heading: 0.5, V: 1}
	p := s.Pose()
	if p.Pos != s.Pos || p.Heading != s.Heading {
		t.Errorf("Pose = %+v", p)
	}
}
