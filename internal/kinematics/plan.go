package kinematics

import (
	"fmt"
	"math"
)

// EarliestArrival implements the paper's earliest-time-of-arrival
// calculation (Chapter 6): the vehicle accelerates from vInit at maximum
// acceleration until it reaches MaxSpeed after TAcc = (Vmax-Vinit)/amax,
// covering DeltaX = 0.5*amax*TAcc^2 + Vinit*TAcc, and then cruises, so
//
//	EToA = TAcc + (D - DeltaX) / Vmax.
//
// If the distance is too short to reach MaxSpeed, the vehicle is still
// accelerating at arrival. It returns the arrival delay after the profile
// start (seconds), the arrival velocity, and the max-acceleration profile
// anchored at startTime.
func EarliestArrival(startTime, dist, vInit float64, p Params) (eta, vArr float64, prof Profile) {
	if dist <= 0 {
		return 0, vInit, HoldProfile(startTime, vInit, 0)
	}
	vInit = math.Min(vInit, p.MaxSpeed)
	tAcc := (p.MaxSpeed - vInit) / p.MaxAccel
	deltaX := 0.5*p.MaxAccel*tAcc*tAcc + vInit*tAcc
	if deltaX >= dist {
		// Still accelerating at arrival: solve 0.5*a*t^2 + v0*t = dist.
		t := (-vInit + math.Sqrt(vInit*vInit+2*p.MaxAccel*dist)) / p.MaxAccel
		vArr = vInit + p.MaxAccel*t
		prof = NewProfile(startTime, Phase{Duration: t, V0: vInit, Accel: p.MaxAccel})
		return t, vArr, prof
	}
	cruise := (dist - deltaX) / p.MaxSpeed
	eta = tAcc + cruise
	prof = NewProfile(startTime,
		Phase{Duration: tAcc, V0: vInit, Accel: p.MaxAccel},
		Phase{Duration: cruise, V0: p.MaxSpeed, Accel: 0},
	)
	return eta, p.MaxSpeed, prof
}

// dipArrival computes the arrival delay when the vehicle decelerates from
// vInit to vLow at max deceleration and then accelerates at max acceleration
// toward MaxSpeed for the remaining distance (cruising at MaxSpeed if
// reached). Returns +Inf if the dip itself does not fit in dist.
func dipArrival(dist, vInit, vLow float64, p Params) (eta, vArr float64, ok bool) {
	if vLow > vInit {
		return 0, 0, false
	}
	tDown := (vInit - vLow) / p.MaxDecel
	dDown := (vInit*vInit - vLow*vLow) / (2 * p.MaxDecel)
	if dDown > dist+1e-12 {
		return 0, 0, false
	}
	rem := dist - dDown
	etaUp, vArr, _ := EarliestArrival(0, rem, vLow, p)
	return tDown + etaUp, vArr, true
}

// LatestNoDwell returns the latest arrival delay reachable over dist meters
// from vInit without ever slowing below vFloor: decelerate at max to the
// deepest reachable dip speed (floored at vFloor), then accelerate out.
// This bounds the latest *safe* arrival for a vehicle that can no longer
// hold behind the conflict-zone lip — a stop-and-dwell plan would park its
// nose inside crossing movements' conflict zones, so dwells don't count.
// ok is false when even the dip does not fit in dist (vInit already above
// what dist can absorb while respecting vFloor).
func LatestNoDwell(dist, vInit, vFloor float64, p Params) (eta float64, ok bool) {
	if err := p.Validate(); err != nil || dist < 0 {
		return 0, false
	}
	vInit = math.Min(math.Max(vInit, 0), p.MaxSpeed)
	vLow := math.Sqrt(math.Max(0, vInit*vInit-2*p.MaxDecel*dist))
	if vFloor > vLow {
		vLow = vFloor
	}
	if vLow > vInit {
		vLow = vInit
	}
	eta, _, ok = dipArrival(dist, vInit, vLow, p)
	return eta, ok
}

// PlanArrival builds the fastest-crossing profile that covers dist meters
// starting at startTime with initial velocity vInit and arrives exactly
// arriveAt - startTime seconds later. This is the vehicle-side trajectory
// of the Crossroads protocol: the IM hands back (TE, ToA, VT) and the
// vehicle runs this plan from TE.
//
// Strategy (monotone in the dip speed, solved by bisection):
//  1. If the requested arrival equals the earliest arrival (within eps),
//     use the max-acceleration profile.
//  2. Otherwise decelerate to a dip speed vLow in [0, vInit], then
//     accelerate at max toward MaxSpeed; lower dips arrive later.
//  3. If even dipping to a full stop arrives too early, insert a stopped
//     dwell phase of the missing duration.
//
// It returns ErrInfeasible if arriveAt is earlier than the earliest
// kinematically reachable arrival (with 1 ms tolerance).
func PlanArrival(startTime, dist, vInit, arriveAt float64, p Params) (Profile, error) {
	if err := p.Validate(); err != nil {
		return Profile{}, err
	}
	if dist < 0 {
		return Profile{}, fmt.Errorf("kinematics: negative distance %v", dist)
	}
	vInit = math.Min(math.Max(vInit, 0), p.MaxSpeed)
	want := arriveAt - startTime
	const tol = 1e-3 // 1 ms scheduling tolerance
	earliest, _, fastProf := EarliestArrival(startTime, dist, vInit, p)
	if want < earliest-tol {
		return Profile{}, fmt.Errorf("%w: want arrival %.4fs after start, earliest %.4fs", ErrInfeasible, want, earliest)
	}
	if want <= earliest+tol {
		return fastProf, nil
	}

	// Arrival time when dipping all the way to a stop (no dwell).
	etaStop, _, okStop := dipArrival(dist, vInit, 0, p)
	if okStop && want > etaStop {
		// Stop, dwell, then launch.
		dwell := want - etaStop
		return buildDipProfile(startTime, dist, vInit, 0, dwell, p), nil
	}

	// Bisection on vLow in [lowBound, vInit]; eta(vLow) is decreasing in
	// vLow. lowBound > 0 only when the vehicle is too close to reach 0.
	lo, hi := 0.0, vInit
	if !okStop {
		// Find the smallest reachable dip speed: dDown(vLow) = dist.
		// vLow = sqrt(vInit^2 - 2*dmax*dist).
		lo = math.Sqrt(math.Max(0, vInit*vInit-2*p.MaxDecel*dist))
		etaLo, _, okLo := dipArrival(dist, vInit, lo, p)
		if !okLo || want > etaLo+tol {
			// Even the deepest feasible dip arrives too early; the caller
			// asked to arrive later than physics allows from here. Return
			// the latest feasible profile: deepest dip.
			return buildDipProfile(startTime, dist, vInit, lo, 0, p), nil
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		eta, _, ok := dipArrival(dist, vInit, mid, p)
		if !ok || eta > want {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-10 {
			break
		}
	}
	vLow := (lo + hi) / 2
	return buildDipProfile(startTime, dist, vInit, vLow, 0, p), nil
}

// buildDipProfile assembles decel-to-vLow, dwell (only if vLow==0), and
// accel-toward-MaxSpeed phases covering exactly dist meters.
func buildDipProfile(startTime, dist, vInit, vLow, dwell float64, p Params) Profile {
	var phases []Phase
	if vInit > vLow+1e-12 {
		phases = append(phases, Phase{
			Duration: (vInit - vLow) / p.MaxDecel,
			V0:       vInit,
			Accel:    -p.MaxDecel,
		})
	}
	dDown := (vInit*vInit - vLow*vLow) / (2 * p.MaxDecel)
	if dDown > dist {
		dDown = dist
	}
	if dwell > 0 {
		phases = append(phases, Phase{Duration: dwell, V0: vLow, Accel: 0})
	}
	rem := dist - dDown
	if rem > 1e-12 {
		// Accelerate toward MaxSpeed, cruising if it is reached early.
		tAcc := (p.MaxSpeed - vLow) / p.MaxAccel
		dAcc := 0.5*p.MaxAccel*tAcc*tAcc + vLow*tAcc
		if dAcc >= rem {
			t := (-vLow + math.Sqrt(vLow*vLow+2*p.MaxAccel*rem)) / p.MaxAccel
			phases = append(phases, Phase{Duration: t, V0: vLow, Accel: p.MaxAccel})
		} else {
			phases = append(phases,
				Phase{Duration: tAcc, V0: vLow, Accel: p.MaxAccel},
				Phase{Duration: (rem - dAcc) / p.MaxSpeed, V0: p.MaxSpeed, Accel: 0},
			)
		}
	}
	return NewProfile(startTime, phases...)
}

// SlowestPoint returns the minimum velocity reached during the profile's
// phases and the remaining distance to totalDist at that point. Planners use
// it to check where a dip plan dwells (or crawls): a vehicle must not park
// with its nose inside another movement's conflict zone.
func SlowestPoint(prof Profile, totalDist float64) (minV, remaining float64) {
	minV = math.Inf(1)
	var covered float64
	check := func(v, at float64) {
		if v < minV {
			minV = v
			remaining = totalDist - at
		}
	}
	if len(prof.Phases) == 0 {
		return 0, totalDist
	}
	check(prof.Phases[0].V0, 0)
	for _, ph := range prof.Phases {
		check(ph.VEnd(), covered+ph.Distance())
		covered += ph.Distance()
	}
	return minV, remaining
}

// PlanConstantSpeed returns the trivial profile of a vehicle holding speed v
// over dist meters (the AIM proposal trajectory), plus its arrival delay.
func PlanConstantSpeed(startTime, dist, v float64) (Profile, float64) {
	if v <= 0 {
		return HoldProfile(startTime, 0, 0), math.Inf(1)
	}
	d := dist / v
	return HoldProfile(startTime, v, d), d
}

// VTArrival solves the VT-IM response: given the request's current velocity
// and distance, and a required arrival time, it returns the single target
// velocity VT the vehicle should adopt immediately such that — after
// ramping from vInit to VT at the maximum rate and then holding VT — it
// reaches the intersection at the required time. This mirrors Algorithm 1's
// calculateTargetVelocity. Returns ErrInfeasible when even MaxSpeed is too
// slow (arrival later than required) — callers treat that as "go at
// earliest".
func VTArrival(dist, vInit, wantDelay float64, p Params) (float64, error) {
	earliest, vArrMax, _ := EarliestArrival(0, dist, vInit, p)
	if wantDelay <= earliest {
		return vArrMax, nil
	}
	// eta(v): ramp from vInit to v at max rate, hold v. Monotone
	// decreasing in v.
	eta := func(v float64) float64 {
		if v <= 1e-9 {
			return math.Inf(1)
		}
		var rate float64
		if v >= vInit {
			rate = p.MaxAccel
		} else {
			rate = p.MaxDecel
		}
		tRamp := math.Abs(v-vInit) / rate
		dRamp := (vInit + v) / 2 * tRamp
		if dRamp > dist {
			// Cannot complete the ramp before the line; solve within ramp.
			a := rate
			if v < vInit {
				a = -rate
			}
			disc := vInit*vInit + 2*a*dist
			if disc < 0 {
				return math.Inf(1)
			}
			return (math.Sqrt(disc) - vInit) / a
		}
		return tRamp + (dist-dRamp)/v
	}
	lo, hi := 0.0, p.MaxSpeed
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if eta(mid) > wantDelay {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-10 {
			break
		}
	}
	v := (lo + hi) / 2
	if v < 1e-6 {
		return 0, fmt.Errorf("%w: required crawl speed below resolution", ErrInfeasible)
	}
	return v, nil
}

// RampHoldProfile builds the VT-IM vehicle trajectory: ramp from vInit to
// vTarget at the maximum rate, then hold vTarget for the remainder of dist
// meters. The profile ends when dist has been covered.
func RampHoldProfile(startTime, dist, vInit, vTarget float64, p Params) Profile {
	var rate float64
	if vTarget >= vInit {
		rate = p.MaxAccel
	} else {
		rate = -p.MaxDecel
	}
	var phases []Phase
	tRamp := 0.0
	dRamp := 0.0
	if math.Abs(vTarget-vInit) > 1e-12 {
		tRamp = (vTarget - vInit) / rate
		dRamp = (vInit + vTarget) / 2 * tRamp
		if dRamp >= dist {
			// Ramp alone covers the distance; truncate it.
			dt := solvePhaseTime(vInit, rate, dist, tRamp)
			if math.IsNaN(dt) {
				dt = tRamp
			}
			return NewProfile(startTime, Phase{Duration: dt, V0: vInit, Accel: rate})
		}
		phases = append(phases, Phase{Duration: tRamp, V0: vInit, Accel: rate})
	}
	if vTarget > 1e-12 {
		phases = append(phases, Phase{Duration: (dist - dRamp) / vTarget, V0: vTarget, Accel: 0})
	}
	return NewProfile(startTime, phases...)
}
