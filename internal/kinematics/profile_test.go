package kinematics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPhaseBasics(t *testing.T) {
	ph := Phase{Duration: 2, V0: 1, Accel: 0.5}
	if got := ph.VEnd(); got != 2 {
		t.Errorf("VEnd = %v, want 2", got)
	}
	if got := ph.Distance(); got != 1*2+0.5*0.5*4 {
		t.Errorf("Distance = %v, want 3", got)
	}
}

func TestProfileVelocityAndDistance(t *testing.T) {
	// Accelerate 0->2 m/s over 2 s (a=1), then hold 2 m/s for 3 s.
	p := NewProfile(10,
		Phase{Duration: 2, V0: 0, Accel: 1},
		Phase{Duration: 3, V0: 2, Accel: 0},
	)
	if got := p.Duration(); got != 5 {
		t.Errorf("Duration = %v", got)
	}
	if got := p.EndTime(); got != 15 {
		t.Errorf("EndTime = %v", got)
	}
	if got := p.FinalVelocity(); got != 2 {
		t.Errorf("FinalVelocity = %v", got)
	}
	if got := p.TotalDistance(); got != 2+6 {
		t.Errorf("TotalDistance = %v", got)
	}
	cases := []struct{ t, wantV, wantD float64 }{
		{9, 0, 0},    // before start: hold initial velocity (0)
		{10, 0, 0},   // start
		{11, 1, 0.5}, // mid-acceleration
		{12, 2, 2},   // end of acceleration
		{13.5, 2, 5}, // cruising
		{15, 2, 8},   // end
		{16, 2, 10},  // extrapolation at final velocity
	}
	for _, c := range cases {
		if got := p.VelocityAt(c.t); !almostEq(got, c.wantV, 1e-12) {
			t.Errorf("VelocityAt(%v) = %v, want %v", c.t, got, c.wantV)
		}
		if got := p.DistanceAt(c.t); !almostEq(got, c.wantD, 1e-12) {
			t.Errorf("DistanceAt(%v) = %v, want %v", c.t, got, c.wantD)
		}
	}
}

func TestProfileBackwardExtrapolation(t *testing.T) {
	// Vehicle approaching at 3 m/s before profile starts.
	p := NewProfile(5, Phase{Duration: 2, V0: 3, Accel: -1})
	if got := p.DistanceAt(4); !almostEq(got, -3, 1e-12) {
		t.Errorf("DistanceAt before start = %v, want -3", got)
	}
	if got := p.VelocityAt(0); got != 3 {
		t.Errorf("VelocityAt before start = %v, want 3", got)
	}
}

func TestProfileTimeAtDistance(t *testing.T) {
	p := NewProfile(0,
		Phase{Duration: 2, V0: 0, Accel: 1}, // covers 2 m
		Phase{Duration: 1, V0: 2, Accel: 0}, // covers 2 m
	)
	if got := p.TimeAtDistance(0); got != 0 {
		t.Errorf("TimeAtDistance(0) = %v", got)
	}
	// 0.5 m during acceleration: 0.5 = 0.5*t^2 => t=1.
	if got := p.TimeAtDistance(0.5); !almostEq(got, 1, 1e-9) {
		t.Errorf("TimeAtDistance(0.5) = %v, want 1", got)
	}
	// 3 m: 2 m in phase 1, then 1 m at 2 m/s => t=2.5.
	if got := p.TimeAtDistance(3); !almostEq(got, 2.5, 1e-9) {
		t.Errorf("TimeAtDistance(3) = %v, want 2.5", got)
	}
	// 6 m: 4 m in phases, 2 m extrapolated at 2 m/s => t=4.
	if got := p.TimeAtDistance(6); !almostEq(got, 4, 1e-9) {
		t.Errorf("TimeAtDistance(6) = %v, want 4", got)
	}
}

func TestProfileTimeAtDistanceUnreachable(t *testing.T) {
	// Brake to a stop after 2 m; 5 m is never reached.
	p := NewProfile(0, Phase{Duration: 2, V0: 2, Accel: -1})
	if got := p.TimeAtDistance(5); !math.IsInf(got, 1) {
		t.Errorf("TimeAtDistance(5) = %v, want +Inf", got)
	}
	if got := p.TimeAtDistance(2); !almostEq(got, 2, 1e-6) {
		t.Errorf("TimeAtDistance(2) = %v, want 2", got)
	}
}

func TestProfileRoundTripTimeDistance(t *testing.T) {
	f := func(v0, a1, d1, d2 float64) bool {
		v0 = math.Abs(math.Mod(v0, 10))
		a1 = math.Mod(a1, 3)
		d1 = math.Abs(math.Mod(d1, 5)) + 0.1
		d2 = math.Abs(math.Mod(d2, 5)) + 0.1
		// Keep velocity nonnegative through phase 1.
		if v0+a1*d1 < 0.1 {
			a1 = (0.1 - v0) / d1
		}
		p := NewProfile(1,
			Phase{Duration: d1, V0: v0, Accel: a1},
			Phase{Duration: d2, V0: v0 + a1*d1, Accel: 0},
		)
		// Pick a distance mid-profile and round-trip it.
		target := p.TotalDistance() * 0.6
		if target <= 0 {
			return true
		}
		tt := p.TimeAtDistance(target)
		if math.IsInf(tt, 1) {
			return true // stopped profile; nothing to check
		}
		back := p.DistanceAt(tt)
		return almostEq(back, target, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProfileMonotoneDistance(t *testing.T) {
	// Distance must be nondecreasing for profiles with nonnegative velocity.
	p := NewProfile(0,
		Phase{Duration: 1, V0: 3, Accel: -3}, // brake to 0
		Phase{Duration: 2, V0: 0, Accel: 0},  // dwell
		Phase{Duration: 1, V0: 0, Accel: 2},  // launch
	)
	prev := math.Inf(-1)
	for tt := 0.0; tt < 5; tt += 0.01 {
		d := p.DistanceAt(tt)
		if d < prev-1e-12 {
			t.Fatalf("distance decreased at t=%v: %v < %v", tt, d, prev)
		}
		prev = d
	}
}

func TestNewProfilePanicsOnDiscontinuity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewProfile(0, Phase{Duration: 1, V0: 0, Accel: 1}, Phase{Duration: 1, V0: 5, Accel: 0})
}

func TestNewProfilePanicsOnNegativeDuration(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewProfile(0, Phase{Duration: -1, V0: 0, Accel: 1})
}

func TestProfileShiftAndAppend(t *testing.T) {
	p := NewProfile(0, Phase{Duration: 1, V0: 1, Accel: 0})
	q := p.Shift(2)
	if q.StartTime != 2 || p.StartTime != 0 {
		t.Errorf("Shift: got %v / original %v", q.StartTime, p.StartTime)
	}
	r := p.Append(Phase{Duration: 1, V0: 1, Accel: 1})
	if r.Duration() != 2 || p.Duration() != 1 {
		t.Errorf("Append mutated original or wrong duration")
	}
	if r.FinalVelocity() != 2 {
		t.Errorf("FinalVelocity after append = %v", r.FinalVelocity())
	}
}

func TestProfileAppendPanicsOnJump(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	p := NewProfile(0, Phase{Duration: 1, V0: 1, Accel: 0})
	p.Append(Phase{Duration: 1, V0: 9, Accel: 0})
}

func TestProfileString(t *testing.T) {
	p := NewProfile(1.5, Phase{Duration: 2, V0: 1, Accel: 0.25})
	s := p.String()
	if !strings.Contains(s, "t0=1.500") || !strings.Contains(s, "v0=1.00") {
		t.Errorf("String = %q", s)
	}
}

func TestHoldRampStopProfiles(t *testing.T) {
	h := HoldProfile(0, 2, 3)
	if h.TotalDistance() != 6 || h.FinalVelocity() != 2 {
		t.Errorf("HoldProfile: %v, %v", h.TotalDistance(), h.FinalVelocity())
	}
	r := RampProfile(0, 1, 3, 2)
	if !almostEq(r.Duration(), 1, 1e-12) || r.FinalVelocity() != 3 {
		t.Errorf("RampProfile up: %v, %v", r.Duration(), r.FinalVelocity())
	}
	rd := RampProfile(0, 3, 1, 2)
	if !almostEq(rd.Duration(), 1, 1e-12) || rd.FinalVelocity() != 1 {
		t.Errorf("RampProfile down: %v, %v", rd.Duration(), rd.FinalVelocity())
	}
	if n := RampProfile(0, 2, 2, 1); n.Duration() != 0 {
		t.Errorf("RampProfile flat: %v", n.Duration())
	}
	p := ScaleModelParams()
	s := StopProfile(0, 3, p)
	if !almostEq(s.Duration(), 1, 1e-12) {
		t.Errorf("StopProfile duration = %v, want 1", s.Duration())
	}
	if !almostEq(s.FinalVelocity(), 0, 1e-12) {
		t.Errorf("StopProfile final velocity = %v", s.FinalVelocity())
	}
	if !almostEq(s.TotalDistance(), 1.5, 1e-12) {
		t.Errorf("StopProfile distance = %v, want 1.5", s.TotalDistance())
	}
	if s0 := StopProfile(0, 0, p); s0.TotalDistance() != 0 {
		t.Errorf("StopProfile at rest moved")
	}
}

func TestRampProfilePanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	RampProfile(0, 1, 2, 0)
}
